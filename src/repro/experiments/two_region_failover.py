"""Two-region failover: the global-membership deadlock, kept fixed.

A 2-cluster C-Raft deployment is the paper's most fragile shape: the
global configuration holds exactly two cluster leaders, so one crash used
to wedge the whole global level (quorum 2-of-2, and the degraded-reconfig
guard rightly refuses to shrink a leader that hears from nobody) -- the
ROADMAP's "global-membership deadlock", pinned for two PRs as a strict
xfail at exactly this topology and seed. The fix keeps the retired
bootstrap seed as a standing non-voting observer (tiebreaker for
elections and CONFIG decisions while the voting set is ``<= 2``) and lets
a caught-up joining leader count toward the exclusion quorum of the
member it replaces (see README "Global membership liveness").

This scenario drives the regression end to end at deployment scale:
bootstrap two regions, crash the east leader, and require that -- without
the dead site ever returning -- the exclusion commits, the successor's
global join completes, and both survivors' batches land in the global
log, all within a bounded number of global heartbeat rounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.consensus.timing import TimingConfig
from repro.craft.batching import BatchPolicy
from repro.errors import ExperimentError
from repro.experiments.base import ResultTable, require
from repro.harness.checkers import check_election_safety
from repro.harness.workload import ClosedLoopWorkload
from repro.scenarios.registry import Scenario, register_scenario
from repro.scenarios.runner import RunContext, SweepRunner, drive
from repro.scenarios.spec import (
    Cell,
    LatencySpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.smr.kv import KVStateMachine


@dataclass(frozen=True)
class TwoRegionFailoverConfig:
    sites_per_cluster: int = 3
    requests: int = 10            # commits per surviving proposer
    batch_size: int = 5
    wan_rtt: float = 0.080        # east <-> west round trip
    #: The deadlock's pinned reproduction seed (ROADMAP / the formerly
    #: strict-xfail TestTwoMemberGlobalDeadlock).
    seed: int = 18
    #: Liveness bound, in global heartbeat intervals: crash -> successor
    #: member + exclusion committed + all batches applied. Generous
    #: against the observed ~13 rounds, tight against the old deadlock
    #: (which never completed at all).
    round_budget: int = 60
    timeout: float = 300.0

    @classmethod
    def paper(cls) -> "TwoRegionFailoverConfig":
        return cls()

    @classmethod
    def quick(cls) -> "TwoRegionFailoverConfig":
        return cls()

    @classmethod
    def smoke(cls) -> "TwoRegionFailoverConfig":
        # requests stays a multiple of batch_size: a partial trailing
        # batch would sit in the batcher waiting for more traffic.
        return cls(requests=5)


@dataclass
class TwoRegionFailoverResult:
    config: TwoRegionFailoverConfig
    victim: str                   # crashed east leader (was global voter)
    successor: str                # new east leader that joined globally
    observer: str                 # the standing tiebreaker (retired seed)
    join_rounds: float            # crash -> successor in global config
    exclusion_rounds: float       # crash -> victim's exclusion committed
    total_rounds: float           # crash -> every batch globally applied
    global_applied: int           # inner entries applied from global log
    members_after: tuple[str, ...]

    def table(self) -> ResultTable:
        table = ResultTable(
            "Two-region failover -- global membership stays live after "
            "the east leader dies",
            ["victim", "successor", "observer", "join rounds",
             "exclusion rounds", "total rounds", "global applied"])
        table.add_row(self.victim, self.successor, self.observer,
                      round(self.join_rounds, 1),
                      round(self.exclusion_rounds, 1),
                      round(self.total_rounds, 1), self.global_applied)
        table.add_note(
            f"members after failover: {list(self.members_after)}; the "
            f"dead site never returned (round = one global heartbeat "
            f"interval, budget {self.config.round_budget})")
        return table

    def check_shape(self) -> None:
        config = self.config
        require(self.successor != self.victim,
                "a new east leader must take over")
        require(self.victim not in self.members_after,
                "the dead leader's exclusion must commit")
        require(self.successor in self.members_after,
                "the successor's global join must complete")
        require(self.global_applied >= 2 * config.requests,
                f"both survivors' batches must apply globally "
                f"({self.global_applied}/{2 * config.requests})")
        for label, rounds in (("join", self.join_rounds),
                              ("exclusion", self.exclusion_rounds),
                              ("total", self.total_rounds)):
            require(rounds <= config.round_budget,
                    f"{label} took {rounds:.1f} global heartbeat rounds "
                    f"(budget {config.round_budget})")


@drive("two_region_failover")
def drive_two_region_failover(deployment, spec: ScenarioSpec) -> dict:
    """Crash the east leader after global bootstrap; time the recovery
    of global membership and batch flow in global heartbeat rounds."""
    ctx = RunContext(deployment, spec)
    deployment.start_all()
    leaders = deployment.run_until_local_leaders(
        timeout=spec.leader_timeout)
    deployment.run_until_global_ready(
        timeout=spec.params.get("global_ready_timeout", 90.0))
    observers = deployment.global_observers()

    victim = leaders["east"]
    deployment.servers[victim].crash()
    crashed_at = deployment.loop.now()
    round_length = deployment.global_timing.heartbeat_interval

    def rounds_since_crash() -> float:
        return (deployment.loop.now() - crashed_at) / round_length

    if not deployment.run_until(
            lambda: (deployment.local_leader("east") is not None
                     and deployment.local_leader("east") != victim),
            timeout=spec.timeout):
        raise ExperimentError("east never elected a successor")
    successor = deployment.local_leader("east")

    def successor_is_member() -> bool:
        engine = deployment.servers[successor].global_engine
        return engine is not None and engine.is_member

    if not deployment.run_until(successor_is_member, timeout=spec.timeout):
        raise ExperimentError(
            f"successor {successor!r} never joined the global "
            f"configuration (the two-member deadlock is back)")
    join_rounds = rounds_since_crash()

    def victim_excluded() -> bool:
        leader = deployment.global_leader()
        if leader is None:
            return False
        engine = deployment.servers[leader].global_engine
        return victim not in engine.configuration.members

    if not deployment.run_until(victim_excluded, timeout=spec.timeout):
        raise ExperimentError(
            f"crashed leader {victim!r} was never excluded")
    exclusion_rounds = rounds_since_crash()

    # The survivors' batches must reach the global log with the dead
    # site still down: one proposer per cluster, off the victim.
    for cluster in deployment.topology.clusters:
        site = next(n for n in deployment.topology.nodes_in_cluster(cluster)
                    if n != victim and deployment.servers[n].alive)
        client = deployment.add_client(site=site)
        workload = ClosedLoopWorkload(
            client, max_requests=spec.workload.requests,
            command_factory=lambda s, c=cluster: {
                "op": "put", "key": f"{c}.{s}", "value": s})
        workload.start()
        ctx.workloads.append(workload)
    target = 2 * spec.workload.requests
    if not deployment.run_until(
            lambda: (ctx.all_done()
                     and deployment.total_global_applied() >= target),
            timeout=spec.timeout):
        raise ExperimentError(
            f"survivor batches stalled at "
            f"{deployment.total_global_applied()}/{target} global applies")
    total_rounds = rounds_since_crash()
    assert not deployment.servers[victim].alive  # it truly never returned
    check_election_safety(deployment.trace)

    leader = deployment.global_leader()
    members = deployment.servers[leader].global_engine.configuration.members
    return {"victim": victim,
            "successor": successor,
            "observer": observers[0] if observers else "",
            "join_rounds": join_rounds,
            "exclusion_rounds": exclusion_rounds,
            "total_rounds": total_rounds,
            "global_applied": deployment.total_global_applied(),
            "members_after": tuple(members)}


def two_region_failover_spec(config: TwoRegionFailoverConfig
                             ) -> ScenarioSpec:
    return ScenarioSpec(
        name="two_region_failover", engine="craft",
        topology=TopologySpec(n_sites=2 * config.sites_per_cluster,
                              regions=("east", "west")),
        batch=BatchPolicy(batch_size=config.batch_size),
        latency=LatencySpec(kind="rtt_matrix",
                            rtts=(("east", "west", config.wan_rtt),),
                            intra_rtt=0.0008, jitter=0.1),
        state_machine=KVStateMachine,
        workload=WorkloadSpec(requests=config.requests),
        drive="two_region_failover", timeout=config.timeout)


def two_region_failover_cells(config: TwoRegionFailoverConfig
                              ) -> list[Cell]:
    return [Cell(key=("failover",),
                 spec=two_region_failover_spec(config),
                 seed=config.seed)]


def run_two_region_failover(config: TwoRegionFailoverConfig | None = None,
                            jobs: int = 1) -> TwoRegionFailoverResult:
    config = config or TwoRegionFailoverConfig.paper()
    metrics = SweepRunner(jobs).map(two_region_failover_cells(config))[0]
    return TwoRegionFailoverResult(config=config, **metrics)


register_scenario(Scenario(
    name="two_region_failover",
    description="2-cluster deployment survives its east leader's crash: "
                "observer tiebreaker + joining-leader exclusion quorum "
                "keep the global configuration live",
    run=run_two_region_failover,
    make_config=lambda mode: {
        "quick": TwoRegionFailoverConfig.quick,
        "full": TwoRegionFailoverConfig.paper,
        "smoke": TwoRegionFailoverConfig.smoke}[mode](),
    modes=("quick", "full", "smoke")))
