"""AWS-like region round-trip times.

The paper reports 10--300 ms RTT between AWS regions and under 1 ms
within a region (Section VI). The matrix below follows publicly known
inter-region latencies for the region mix the paper names (North America,
South America, Europe, Asia); absolute values only need to land in the
paper's envelope, since we compare protocol *shapes*, not testbed
constants.
"""

from __future__ import annotations

from repro.errors import ExperimentError
from repro.net.latency import RegionLatencyModel
from repro.net.topology import Topology

#: Region pool in the order clusters are allocated (Fig. 5 uses up to 10).
REGIONS: list[str] = [
    "us-east", "us-west", "eu-west", "eu-central", "ap-northeast",
    "ap-southeast", "sa-east", "ca-central", "ap-south", "eu-north",
]

#: Round-trip seconds between region pairs (unordered).
RTT_MATRIX: dict[tuple[str, str], float] = {
    ("us-east", "us-west"): 0.062,
    ("us-east", "eu-west"): 0.076,
    ("us-east", "eu-central"): 0.089,
    ("us-east", "ap-northeast"): 0.156,
    ("us-east", "ap-southeast"): 0.214,
    ("us-east", "sa-east"): 0.114,
    ("us-east", "ca-central"): 0.014,
    ("us-east", "ap-south"): 0.192,
    ("us-east", "eu-north"): 0.104,
    ("us-west", "eu-west"): 0.135,
    ("us-west", "eu-central"): 0.148,
    ("us-west", "ap-northeast"): 0.107,
    ("us-west", "ap-southeast"): 0.168,
    ("us-west", "sa-east"): 0.174,
    ("us-west", "ca-central"): 0.060,
    ("us-west", "ap-south"): 0.222,
    ("us-west", "eu-north"): 0.162,
    ("eu-west", "eu-central"): 0.025,
    ("eu-west", "ap-northeast"): 0.210,
    ("eu-west", "ap-southeast"): 0.172,
    ("eu-west", "sa-east"): 0.178,
    ("eu-west", "ca-central"): 0.070,
    ("eu-west", "ap-south"): 0.122,
    ("eu-west", "eu-north"): 0.031,
    ("eu-central", "ap-northeast"): 0.226,
    ("eu-central", "ap-southeast"): 0.158,
    ("eu-central", "sa-east"): 0.196,
    ("eu-central", "ca-central"): 0.084,
    ("eu-central", "ap-south"): 0.110,
    ("eu-central", "eu-north"): 0.022,
    ("ap-northeast", "ap-southeast"): 0.068,
    ("ap-northeast", "sa-east"): 0.256,
    ("ap-northeast", "ca-central"): 0.144,
    ("ap-northeast", "ap-south"): 0.121,
    ("ap-northeast", "eu-north"): 0.242,
    ("ap-southeast", "sa-east"): 0.300,
    ("ap-southeast", "ca-central"): 0.198,
    ("ap-southeast", "ap-south"): 0.058,
    ("ap-southeast", "eu-north"): 0.186,
    ("sa-east", "ca-central"): 0.122,
    ("sa-east", "ap-south"): 0.284,
    ("sa-east", "eu-north"): 0.208,
    ("ca-central", "ap-south"): 0.204,
    ("ca-central", "eu-north"): 0.092,
    ("ap-south", "eu-north"): 0.140,
}

#: Intra-region RTT: "less than 1 ms within regions".
INTRA_REGION_RTT = 0.0008


def regions_for(cluster_count: int) -> list[str]:
    """First ``cluster_count`` regions of the pool."""
    if not 1 <= cluster_count <= len(REGIONS):
        raise ExperimentError(
            f"cluster count must be 1..{len(REGIONS)}: {cluster_count!r}")
    return REGIONS[:cluster_count]


def latency_model_for(topology: Topology,
                      jitter: float = 0.10) -> RegionLatencyModel:
    """Region latency model covering every node in ``topology``."""
    return RegionLatencyModel(dict(topology.node_regions), RTT_MATRIX,
                              intra_rtt=INTRA_REGION_RTT, jitter=jitter)
