"""Heavy-traffic serving scenario: the full serving layer at scale.

The capstone of the serving-layer work: a 6x5 C-Raft mesh (the
``large_mesh`` shape, flapping WAN uplink included) serving an open-loop
fleet of *session* clients -- tens of thousands of distinct sessions in
full mode -- with adaptive proposal batching at the global level and
percentile SLO assertions over the measured behaviour.

What it exercises that no earlier scenario does:

- **Sessions at scale**: every request carries ``(session_id,
  sequence)``; servers answer retried duplicates from the session table
  without re-entering consensus. The flapping uplink makes retries (and
  therefore duplicate suppression) a steady-state occurrence, not an
  edge case.
- **Adaptive batching**: the global batch policy starts small and lets
  the observed global-commit-latency EWMA steer ``batch_size`` /
  ``max_outstanding`` between the configured floors and ceilings.
- **Percentile SLOs**: client-observed commit latencies stream into a
  bounded :class:`~repro.metrics.summary.StreamingReservoir`; the run
  fails (raises) if p50/p99/p999, throughput, or the abandoned-request
  fraction violate the declared :class:`~repro.scenarios.spec.SLOSpec`.

The fleet is a single global Poisson arrival process over the session
population: each arrival wakes one idle session, which submits its next
command and returns to the idle pool on completion -- sessions never
pipeline, preserving the retry-until-committed ordering the dedup table
relies on. This keeps the simulated load open-loop (arrival rate does
not slow down when the system does) at a per-event cost independent of
the fleet size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.consensus.timing import TimingConfig
from repro.craft.batching import BatchPolicy
from repro.errors import ExperimentError
from repro.experiments.base import ResultTable, cell_seed, require
from repro.experiments.regions import regions_for
from repro.metrics.summary import StreamingReservoir, SummaryStats
from repro.net.topology import Topology
from repro.scenarios.registry import Scenario, register_scenario
from repro.scenarios.runner import SweepRunner, drive
from repro.scenarios.spec import (
    Cell,
    EventSchedule,
    LatencySpec,
    ScenarioSpec,
    SLOSpec,
    TopologySpec,
)
from repro.smr.kv import KVCommand, KVStateMachine


@dataclass(frozen=True)
class HeavyTrafficConfig:
    clusters: int = 6
    sites_per_cluster: int = 5
    #: Distinct client sessions in the fleet.
    sessions: int = 20_000
    #: Aggregate arrival rate across the fleet (requests / sim second).
    arrival_rate: float = 400.0
    #: Retries before a session abandons a request (counts against the
    #: abandoned-fraction SLO).
    max_attempts: int = 8
    duration: float = 60.0        # measurement window (sim seconds)
    warmup: float = 12.0          # after global ready, before measuring
    drain: float = 6.0            # after the window, for in-flight tails
    #: Flapping cycle for the cut region's WAN uplink (see large_mesh).
    first_outage: float = 30.0
    outage: float = 2.0
    stable: float = 4.0
    cycles: int = 10
    #: Latency reservoir size (bounded memory at any fleet scale).
    reservoir: int = 4096
    seed: int = 11

    def __post_init__(self) -> None:
        if self.clusters < 6 or self.sites_per_cluster < 5:
            raise ExperimentError(
                "heavy_traffic runs the large-mesh shape: >= 6 clusters "
                f"x 5 sites (got {self.clusters} x "
                f"{self.sites_per_cluster})")
        if self.sessions < 1 or self.arrival_rate <= 0:
            raise ExperimentError("need sessions and a positive rate")

    @property
    def total_sites(self) -> int:
        return self.clusters * self.sites_per_cluster

    @classmethod
    def paper(cls) -> "HeavyTrafficConfig":
        return cls()

    @classmethod
    def quick(cls) -> "HeavyTrafficConfig":
        return cls(sessions=2_000, arrival_rate=150.0,
                   duration=24.0, warmup=10.0, cycles=6)

    @classmethod
    def smoke(cls) -> "HeavyTrafficConfig":
        # Full 6x5 mesh (shrinking it would defeat the smoke), smaller
        # fleet and window.
        return cls(sessions=300, arrival_rate=60.0,
                   duration=10.0, warmup=6.0, drain=4.0,
                   first_outage=24.0, outage=1.5, stable=3.0, cycles=3)


@dataclass
class HeavyTrafficResult:
    config: HeavyTrafficConfig
    throughput: float             # global applies/s over the window
    latency: SummaryStats         # client-observed commit latency
    abandoned_fraction: float
    duplicates_suppressed: int

    def table(self) -> ResultTable:
        config = self.config
        table = ResultTable(
            "Heavy traffic -- session fleet over a 6x5 C-Raft mesh "
            "(SLO-checked)",
            ["sessions", "rate", "throughput", "p50_ms", "p99_ms",
             "p999_ms", "abandoned"])
        table.add_row(config.sessions, config.arrival_rate,
                      round(self.throughput, 2),
                      round(self.latency.median * 1e3, 1),
                      round(self.latency.p99 * 1e3, 1),
                      round(self.latency.p999 * 1e3, 1),
                      round(self.abandoned_fraction, 4))
        table.add_note(
            f"{config.duration:.0f}s window, adaptive batching, "
            f"{config.cycles} WAN flap cycles, "
            f"{self.duplicates_suppressed} duplicate retries suppressed "
            f"without consensus")
        return table

    def check_shape(self) -> None:
        require(self.throughput > 0.0,
                "the mesh must keep applying globally under load "
                f"(got {self.throughput:.2f}/s)")
        require(self.latency.count > 0, "no requests completed")


def heavy_traffic_spec(config: HeavyTrafficConfig) -> ScenarioSpec:
    regions = regions_for(config.clusters)
    topology = Topology.even_clusters(config.total_sites, regions)
    cut = regions[-1]
    cut_sites = tuple(topology.nodes_in_cluster(cut))
    rest = tuple(n for n in topology.nodes if n not in cut_sites)
    return ScenarioSpec(
        name="heavy_traffic", engine="craft",
        topology=TopologySpec(n_sites=config.total_sites,
                              regions=tuple(regions)),
        timing=TimingConfig.intra_cluster(),
        global_timing=TimingConfig.inter_cluster(),
        # Latency-adaptive: the EWMA of observed global-commit latency
        # steers batch_size/max_outstanding between the bounds below.
        batch=BatchPolicy(batch_size=8, max_outstanding=2, adaptive=True,
                          batch_floor=4, batch_ceiling=64,
                          outstanding_ceiling=8,
                          target_commit_latency=2.0),
        latency=LatencySpec.aws_regions(),
        schedule=EventSchedule.flapping_link(
            (rest, cut_sites), first_outage=config.first_outage,
            outage=config.outage, stable=config.stable,
            cycles=config.cycles),
        trace=False, state_machine=KVStateMachine,
        drive="serving_window",
        slo=SLOSpec(p50=1.0, p99=4.0, p999=8.0,
                    min_throughput=config.arrival_rate * 0.25,
                    max_abandoned_fraction=0.05),
        params={"sessions": config.sessions,
                "arrival_rate": config.arrival_rate,
                "max_attempts": config.max_attempts,
                "warmup": config.warmup, "duration": config.duration,
                "drain": config.drain, "reservoir": config.reservoir,
                "global_ready_timeout": 120.0})


@drive("serving_window")
def drive_serving_window(system, spec: ScenarioSpec) -> dict:
    """Open-loop session fleet against a C-Raft deployment.

    Returns ``{"throughput", "latency", "abandoned_fraction",
    "duplicates_suppressed", "sessions_used"}``; raises ExperimentError
    if ``spec.slo`` is violated.
    """
    params = spec.params
    n_sessions = params["sessions"]
    rate = params["arrival_rate"]
    loop = system.loop
    system.start_all()
    system.run_until_local_leaders(timeout=spec.leader_timeout)
    system.run_until_global_ready(
        timeout=params.get("global_ready_timeout", 90.0))

    sites = list(system.servers)
    clients = [system.add_client(site=sites[i % len(sites)],
                                 name=f"s{i}",
                                 max_attempts=params["max_attempts"],
                                 session=True)
               for i in range(n_sessions)]
    reservoir = StreamingReservoir(params["reservoir"],
                                   system.rng.stream("serving.reservoir"))
    arrivals = system.rng.stream("serving.arrivals")
    #: Sessions with no outstanding request (index into ``clients``).
    idle = list(range(n_sessions))
    state = {"measuring": False, "submitting": True,
             "submitted": 0, "saturated": 0, "counter": 0}

    def on_done(index, record):
        idle.append(index)
        if record.done and state["measuring"]:
            reservoir.add(record.latency)

    def submit_one():
        slot = arrivals.randrange(len(idle))
        idle[slot], idle[-1] = idle[-1], idle[slot]
        index = idle.pop()
        client = clients[index]
        state["submitted"] += 1
        state["counter"] += 1
        command = KVCommand.append(f"k{state['counter'] % 512}",
                                   client.name)
        client.submit(command,
                      on_done=lambda record: on_done(index, record))

    def on_arrival():
        if not state["submitting"]:
            return
        if idle:
            submit_one()
        else:
            state["saturated"] += 1
        loop.call_at(loop.now() + arrivals.expovariate(rate), on_arrival)

    loop.call_at(loop.now() + arrivals.expovariate(rate), on_arrival)
    system.run_for(params["warmup"])
    state["measuring"] = True
    window_start_applied = system.total_global_applied()
    system.run_for(params["duration"])
    throughput = ((system.total_global_applied() - window_start_applied)
                  / params["duration"])
    state["measuring"] = False
    state["submitting"] = False
    system.run_for(params["drain"])

    abandoned = sum(len(c.abandoned) for c in clients)
    fraction = abandoned / max(1, state["submitted"])
    duplicates = sum(server.session_duplicates
                     for server in system.servers.values())
    latency = reservoir.summary()
    if spec.slo is not None:
        spec.slo.check(latency=latency, throughput=throughput,
                       abandoned_fraction=fraction)
    return {"throughput": throughput, "latency": latency,
            "abandoned_fraction": fraction,
            "duplicates_suppressed": duplicates,
            "sessions_used": n_sessions - len(idle),
            "saturated_arrivals": state["saturated"]}


def heavy_traffic_cells(config: HeavyTrafficConfig) -> list[Cell]:
    return [Cell(key=("heavy_traffic",), spec=heavy_traffic_spec(config),
                 seed=cell_seed(config.seed, "heavy_traffic"))]


def run_heavy_traffic(config: HeavyTrafficConfig | None = None,
                      jobs: int = 1) -> HeavyTrafficResult:
    config = config or HeavyTrafficConfig.paper()
    metrics = SweepRunner(jobs).map(heavy_traffic_cells(config))[0]
    return HeavyTrafficResult(
        config=config, throughput=metrics["throughput"],
        latency=metrics["latency"],
        abandoned_fraction=metrics["abandoned_fraction"],
        duplicates_suppressed=metrics["duplicates_suppressed"])


register_scenario(Scenario(
    name="heavy_traffic",
    description="session fleet over the 6x5 mesh: adaptive batching, "
                "exactly-once dedup, and percentile SLO assertions "
                "under a flapping WAN uplink",
    make_config=lambda mode: {"quick": HeavyTrafficConfig.quick,
                              "full": HeavyTrafficConfig.paper,
                              "smoke": HeavyTrafficConfig.smoke}[mode](),
    run=run_heavy_traffic,
    modes=("quick", "full", "smoke")))
