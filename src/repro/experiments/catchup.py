"""Rejoin-to-caught-up latency under churn, with and without snapshots.

The fig4-style churn scenario stressed end to end: a follower crashes
early, the cluster keeps committing (and, in Fast Raft, evicts the silent
member), and the node later recovers and has to catch back up. Without
compaction the leader replays the whole log from the follower's crash
point -- O(history) per rejoin, quadratic over a long churn run. With a
:class:`~repro.snapshot.CompactionPolicy` the leader's log prefix is
gone, so it ships one InstallSnapshot plus the retained tail instead.

The experiment runs the same scenario twice (snapshots on/off) per
engine -- classic Raft, Fast Raft, and C-Raft (where the churned node is
a cluster member catching up at the local level, inheriting the global
image through the composite local snapshot) -- and reports rejoin
latency, replayed entry counts, and snapshot counters.

The crash is declared in the scenario's event schedule; the measured
recovery tail (capture the target commit point, recover, time the
catch-up) is this experiment's registered drive family.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.consensus.config import TransferConfig
from repro.consensus.timing import TimingConfig
from repro.errors import ExperimentError
from repro.experiments.base import ResultTable, require
from repro.harness.checkers import (
    check_committed_prefix_agreement,
    check_images_agree,
    run_safety_checks,
)
from repro.harness.workload import ClosedLoopWorkload
from repro.metrics.summary import SnapshotCounters, tally_snapshots
from repro.scenarios.registry import Scenario, register_scenario
from repro.scenarios.runner import (
    RunContext,
    SweepRunner,
    attach_workloads,
    drive,
    elect_flat_leader,
    run_commit_triggered_events,
    run_workload_to_completion,
)
from repro.scenarios.spec import (
    Cell,
    Event,
    EventSchedule,
    LatencySpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.smr.kv import KVStateMachine
from repro.snapshot import CompactionPolicy
from repro.snapshot.chunking import snapshot_wire_size

ENGINES = ("raft", "fastraft", "craft")


@dataclass(frozen=True)
class CatchupConfig:
    engine: str = "fastraft"
    n_sites: int = 5              # per-cluster sites for craft: 3 + 3
    warmup_commits: int = 20      # commits before the crash
    total_commits: int = 160      # commits before the recovery
    threshold: int = 40           # compaction trigger (entries)
    retain: int = 8               # committed tail kept below the snapshot
    max_append_batch: int = 16    # smaller batches make replay cost visible
    craft_batch_size: int = 10
    seed: int = 11
    timeout: float = 600.0

    @classmethod
    def paper(cls, engine: str) -> "CatchupConfig":
        return cls(engine=engine)

    @classmethod
    def quick(cls, engine: str) -> "CatchupConfig":
        commits = 100 if engine == "craft" else 120
        return cls(engine=engine, total_commits=commits)

    @classmethod
    def smoke(cls, engine: str) -> "CatchupConfig":
        """CI-smoke scale: just enough commits for one compaction cycle
        past the crash point (keeps the shape checks meaningful)."""
        return cls(engine=engine, warmup_commits=10, total_commits=70,
                   threshold=25, retain=4)


@dataclass
class CatchupRun:
    """One scenario execution (snapshots on or off)."""

    snapshots_enabled: bool
    target_commit: int            # commit point the rejoiner had to reach
    catchup_time: float           # recovery -> caught up (sim seconds)
    replayed_entries: int         # entries applied at the rejoiner
    installs: int                 # snapshots installed at the rejoiner
    counters: SnapshotCounters    # cluster-wide snapshot activity


@dataclass
class CatchupResult:
    config: CatchupConfig
    with_snapshots: CatchupRun
    without_snapshots: CatchupRun

    def table(self) -> ResultTable:
        table = ResultTable(
            f"Rejoin catch-up under churn -- {self.config.engine}",
            ["mode", "target", "replayed", "installs", "catchup (ms)"])
        for run in (self.without_snapshots, self.with_snapshots):
            mode = "snapshots" if run.snapshots_enabled else "full replay"
            table.add_row(mode, run.target_commit, run.replayed_entries,
                          run.installs, run.catchup_time * 1000)
        snap = self.with_snapshots
        table.add_note(snap.counters.format())
        table.add_note(
            f"crash after {self.config.warmup_commits} commits, recover "
            f"after {self.config.total_commits}; compaction threshold "
            f"{self.config.threshold}, retain {self.config.retain}")
        return table

    def check_shape(self) -> None:
        snap, full = self.with_snapshots, self.without_snapshots
        require(full.installs == 0,
                "no snapshot may be installed with compaction disabled")
        require(snap.installs >= 1,
                "the rejoiner should catch up via InstallSnapshot")
        require(snap.counters.taken >= 1,
                "the compaction policy should have fired")
        require(snap.replayed_entries < full.replayed_entries,
                f"snapshots must replay strictly fewer entries "
                f"({snap.replayed_entries} vs {full.replayed_entries})")
        require(snap.catchup_time < full.catchup_time,
                f"snapshots must catch up strictly faster "
                f"({snap.catchup_time * 1000:.0f} ms vs "
                f"{full.catchup_time * 1000:.0f} ms)")

    def as_dict(self) -> dict:
        def run_dict(run: CatchupRun) -> dict:
            return {"target": run.target_commit,
                    "replayed": run.replayed_entries,
                    "installs": run.installs,
                    "catchup_ms": run.catchup_time * 1000,
                    "snapshots_taken": run.counters.taken,
                    "snapshots_shipped": run.counters.shipped,
                    "entries_compacted": run.counters.entries_compacted}
        return {"engine": self.config.engine,
                "total_commits": self.config.total_commits,
                "with_snapshots": run_dict(self.with_snapshots),
                "full_replay": run_dict(self.without_snapshots)}


def _policy(config: CatchupConfig, snapshots: bool) -> CompactionPolicy | None:
    if not snapshots:
        return None
    return CompactionPolicy(threshold=config.threshold,
                            retain=config.retain)


# ----------------------------------------------------------------------
# Single-cluster engines (classic Raft, Fast Raft)
# ----------------------------------------------------------------------
def catchup_flat_spec(config: CatchupConfig, snapshots: bool
                      ) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"catchup.{config.engine}."
             f"{'snap' if snapshots else 'replay'}",
        engine=config.engine,
        topology=TopologySpec(n_sites=config.n_sites),
        # recovery_probe_timeout=0: the catch-up tables measure transfer
        # cost from the victim's recovery to full catch-up on the pinned
        # pre-probe timeline (golden-pinned byte-identical); the probe
        # handshake would shift every timestamp by resolving the rejoin
        # before the election timeout the pinned runs wait out.
        timing=TimingConfig(max_append_batch=config.max_append_batch,
                            recovery_probe_timeout=0.0),
        state_machine=KVStateMachine,
        compaction=_policy(config, snapshots),
        schedule=EventSchedule((
            Event("crash", target="nonleader:0",
                  after_commits=config.warmup_commits),)),
        workload=WorkloadSpec(placement="leader",
                              requests=config.total_commits),
        drive="catchup_flat", timeout=config.timeout,
        params={"snapshots": snapshots})


@drive("catchup_flat")
def drive_catchup_flat(cluster, spec: ScenarioSpec) -> CatchupRun:
    """Crash per schedule, finish the workload, then time the rejoin."""
    ctx = RunContext(cluster, spec)
    cluster.start_all()
    ctx.initial_leader = elect_flat_leader(cluster, spec)
    attach_workloads(cluster, spec, ctx, ctx.initial_leader)
    run_commit_triggered_events(ctx)
    victim = ctx.fired[0][2][0]
    run_workload_to_completion(ctx)
    target = cluster.servers[cluster.run_until_leader()].engine.commit_index
    ctx.faults.recover(victim)
    started = cluster.loop.now()
    rejoined = cluster.run_until(
        lambda: cluster.servers[victim].engine.commit_index >= target,
        timeout=spec.timeout)
    if not rejoined:
        raise ExperimentError(
            f"{victim} caught up only to "
            f"{cluster.servers[victim].engine.commit_index}/{target}")
    catchup_time = cluster.loop.now() - started
    cluster.run_for(1.0)
    run_safety_checks(cluster.servers.values(), cluster.trace)
    recovered = cluster.servers[victim]
    return CatchupRun(
        snapshots_enabled=spec.params["snapshots"], target_commit=target,
        catchup_time=catchup_time,
        replayed_entries=len(recovered.applied_log),
        installs=recovered.engine.snapshots_installed,
        counters=tally_snapshots(s.engine
                                 for s in cluster.servers.values()))


# ----------------------------------------------------------------------
# C-Raft (the churned node is a cluster member)
# ----------------------------------------------------------------------
def catchup_craft_spec(config: CatchupConfig, snapshots: bool
                       ) -> ScenarioSpec:
    from repro.craft.batching import BatchPolicy
    return ScenarioSpec(
        name=f"catchup.craft.{'snap' if snapshots else 'replay'}",
        engine="craft",
        topology=TopologySpec(n_sites=6, regions=("east", "west")),
        # recovery_probe_timeout=0: the catch-up tables measure transfer
        # cost from the victim's recovery to full catch-up on the pinned
        # pre-probe timeline (golden-pinned byte-identical); the probe
        # handshake would shift every timestamp by resolving the rejoin
        # before the election timeout the pinned runs wait out.
        timing=TimingConfig(max_append_batch=config.max_append_batch,
                            recovery_probe_timeout=0.0),
        batch=BatchPolicy(batch_size=config.craft_batch_size),
        state_machine=KVStateMachine,
        compaction=_policy(config, snapshots),
        latency=LatencySpec(kind="rtt_matrix",
                            rtts=(("east", "west", 0.080),),
                            intra_rtt=0.0008, jitter=0.1),
        schedule=EventSchedule((
            Event("crash", target="nonleader:0",
                  after_commits=config.warmup_commits),)),
        workload=WorkloadSpec(requests=config.total_commits),
        drive="catchup_craft", timeout=config.timeout,
        params={"snapshots": snapshots, "global_ready_timeout": 60.0})


@drive("catchup_craft")
def drive_catchup_craft(deployment, spec: ScenarioSpec) -> CatchupRun:
    """Same churn at the local level of the first C-Raft cluster."""
    ctx = RunContext(deployment, spec)
    deployment.start_all()
    deployment.run_until_local_leaders(timeout=spec.leader_timeout)
    deployment.run_until_global_ready(
        timeout=spec.params.get("global_ready_timeout", 60.0))
    topo = deployment.topology
    cluster_a = topo.clusters[0]
    leader_a = deployment.local_leader(cluster_a)
    # The crash event's "nonleader:0" resolves within the churned cluster.
    ctx.initial_leader = leader_a
    ctx.server_order = topo.nodes_in_cluster(cluster_a)
    client = deployment.add_client(site=leader_a)
    workload = ClosedLoopWorkload(client,
                                  max_requests=spec.workload.requests)
    ctx.clients.append(client)
    ctx.workloads.append(workload)
    workload.start()
    run_commit_triggered_events(ctx)
    victim = ctx.fired[0][2][0]
    run_workload_to_completion(ctx)
    leader_now = deployment.local_leader(cluster_a)
    target = deployment.servers[leader_now].local_engine.commit_index
    ctx.faults.recover(victim)
    started = deployment.loop.now()
    rejoined = deployment.run_until(
        lambda: (deployment.servers[victim].local_engine.commit_index
                 >= target),
        timeout=spec.timeout, step=0.01)
    if not rejoined:
        raise ExperimentError(
            f"{victim} caught up only to "
            f"{deployment.servers[victim].local_engine.commit_index}"
            f"/{target}")
    catchup_time = deployment.loop.now() - started
    deployment.run_for(2.0)
    _check_craft_consistency(deployment, topo, cluster_a)
    recovered = deployment.servers[victim]
    return CatchupRun(
        snapshots_enabled=spec.params["snapshots"], target_commit=target,
        catchup_time=catchup_time,
        replayed_entries=len(recovered.applied_log),
        installs=recovered.local_engine.snapshots_installed,
        counters=tally_snapshots(
            s.local_engine for s in deployment.servers.values()))


def catchup_cells(config: CatchupConfig) -> list[Cell]:
    make_spec = (catchup_craft_spec if config.engine == "craft"
                 else catchup_flat_spec)
    return [Cell(key=(config.engine, snapshots),
                 spec=make_spec(config, snapshots), seed=config.seed)
            for snapshots in (True, False)]


def run_catchup(config: CatchupConfig, jobs: int = 1) -> CatchupResult:
    """Run the scenario twice (with/without snapshots) and pair them."""
    if config.engine not in ENGINES:
        raise ExperimentError(f"unknown engine: {config.engine!r}")
    runs = SweepRunner(jobs).run(catchup_cells(config))
    return CatchupResult(
        config=config,
        with_snapshots=runs[(config.engine, True)],
        without_snapshots=runs[(config.engine, False)])


def run_catchup_suite(configs: list[CatchupConfig],
                      jobs: int = 1) -> list[CatchupResult]:
    """All engines' cells in one sweep (what ``--scenario catchup`` runs)."""
    cells = [cell for config in configs for cell in catchup_cells(config)]
    runs = SweepRunner(jobs).run(cells)
    return [CatchupResult(config=config,
                          with_snapshots=runs[(config.engine, True)],
                          without_snapshots=runs[(config.engine, False)])
            for config in configs]


# ----------------------------------------------------------------------
# WAN variant: bandwidth-limited links, monolithic vs chunked transfer
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WanCatchupConfig:
    """Rejoin over a constrained WAN link, with the size-aware cost model
    active: every message is charged ``size / bandwidth`` serialization
    delay, so a monolithic InstallSnapshot pays for the whole image in
    one gulp while chunked transfer overlaps its chunks with the acks in
    flight. Run at several snapshot sizes to expose the scaling."""

    engine: str = "fastraft"
    n_sites: int = 5
    #: Commits before the recovery, per size point: more commits => more
    #: distinct keys => a bigger state image to ship.
    size_points: tuple[int, ...] = (80, 200)
    warmup_commits: int = 8       # commits before the crash
    value_bytes: int = 2048       # per-entry payload (scales the image)
    threshold: int = 30           # compaction trigger (entries)
    retain: int = 4
    max_append_batch: int = 16
    one_way_latency: float = 0.040   # an 80 ms RTT WAN link
    bandwidth: float = 200_000.0     # simulated bytes/second
    chunk_size: int = 16384
    chunk_window: int = 8
    seed: int = 7
    timeout: float = 900.0

    @classmethod
    def paper(cls, engine: str) -> "WanCatchupConfig":
        return cls(engine=engine)

    @classmethod
    def quick(cls, engine: str) -> "WanCatchupConfig":
        return cls(engine=engine, size_points=(60, 150))

    @classmethod
    def smoke(cls, engine: str) -> "WanCatchupConfig":
        """CI-smoke scale: tiny but still two sizes and both modes."""
        return cls(engine=engine, size_points=(40, 100),
                   value_bytes=1024, threshold=20,
                   bandwidth=150_000.0, chunk_size=8192)


@dataclass
class WanRun:
    """One (transfer mode, snapshot size) execution."""

    mode: str                     # "monolithic" | "chunked"
    total_commits: int
    snapshot_bytes: int           # wire size of the shipped image
    catchup_time: float           # recovery -> caught up (sim seconds)
    installs: int
    chunks_sent: int


@dataclass
class WanCatchupResult:
    config: WanCatchupConfig
    runs: list[WanRun]

    def _by_mode(self, mode: str) -> list[WanRun]:
        return sorted((r for r in self.runs if r.mode == mode),
                      key=lambda r: r.snapshot_bytes)

    def table(self) -> ResultTable:
        table = ResultTable(
            f"WAN rejoin: monolithic vs chunked InstallSnapshot -- "
            f"{self.config.engine}",
            ["mode", "commits", "image (KB)", "chunks", "catchup (ms)"])
        for run in sorted(self.runs,
                          key=lambda r: (r.mode, r.snapshot_bytes)):
            table.add_row(run.mode, run.total_commits,
                          run.snapshot_bytes / 1024, run.chunks_sent,
                          run.catchup_time * 1000)
        table.add_note(
            f"one-way latency {self.config.one_way_latency * 1000:.0f} ms, "
            f"bandwidth {self.config.bandwidth / 1000:.0f} KB/s, "
            f"chunk {self.config.chunk_size} B x window "
            f"{self.config.chunk_window}")
        return table

    def check_shape(self) -> None:
        mono = self._by_mode("monolithic")
        chunked = self._by_mode("chunked")
        require(all(r.installs >= 1 for r in self.runs),
                "every WAN rejoin must catch up via InstallSnapshot")
        require(all(r.chunks_sent == 0 for r in mono),
                "monolithic runs must not send chunks")
        require(all(r.chunks_sent > 1 for r in chunked),
                "chunked runs must actually split the transfer")
        for small, big in zip(mono, mono[1:]):
            require(big.catchup_time > small.catchup_time,
                    f"monolithic catch-up must grow with snapshot size "
                    f"({small.catchup_time * 1000:.0f} ms @ "
                    f"{small.snapshot_bytes} B vs "
                    f"{big.catchup_time * 1000:.0f} ms @ "
                    f"{big.snapshot_bytes} B)")
        for m, c in zip(mono, chunked):
            require(c.catchup_time < m.catchup_time,
                    f"chunked transfer must beat monolithic on a "
                    f"constrained link ({c.catchup_time * 1000:.0f} ms vs "
                    f"{m.catchup_time * 1000:.0f} ms at "
                    f"{m.snapshot_bytes} B)")

    def as_dict(self) -> dict:
        return {"engine": self.config.engine,
                "bandwidth": self.config.bandwidth,
                "one_way_latency": self.config.one_way_latency,
                "chunk_size": self.config.chunk_size,
                "chunk_window": self.config.chunk_window,
                "runs": [{"mode": r.mode, "commits": r.total_commits,
                          "snapshot_bytes": r.snapshot_bytes,
                          "catchup_ms": r.catchup_time * 1000,
                          "installs": r.installs,
                          "chunks_sent": r.chunks_sent}
                         for r in self.runs]}


def wan_spec(config: WanCatchupConfig, total_commits: int,
             chunked: bool) -> ScenarioSpec:
    transfer = (TransferConfig(chunk_size=config.chunk_size,
                               chunk_window=config.chunk_window)
                if chunked else TransferConfig())
    # The crash also cuts the link: otherwise the leader keeps re-shipping
    # bulk transfers into the void, and whatever happens to be in flight
    # at recovery time would contaminate the measured catch-up window.
    schedule = EventSchedule((
        Event("crash", target="nonleader:0",
              after_commits=config.warmup_commits),
        Event("silent_leave", target="nonleader:0",
              after_commits=config.warmup_commits)))
    return ScenarioSpec(
        name=f"catchup_wan.{config.engine}."
             f"{'chunked' if chunked else 'mono'}.{total_commits}",
        engine=config.engine,
        topology=TopologySpec(n_sites=config.n_sites),
        # recovery_probe_timeout=0: the catch-up tables measure transfer
        # cost from the victim's recovery to full catch-up on the pinned
        # pre-probe timeline (golden-pinned byte-identical); the probe
        # handshake would shift every timestamp by resolving the rejoin
        # before the election timeout the pinned runs wait out.
        timing=TimingConfig(max_append_batch=config.max_append_batch,
                            recovery_probe_timeout=0.0),
        state_machine=KVStateMachine,
        latency=LatencySpec.constant(config.one_way_latency,
                                     bandwidth=config.bandwidth),
        compaction=CompactionPolicy(threshold=config.threshold,
                                    retain=config.retain),
        transfer=transfer, schedule=schedule,
        workload=WorkloadSpec(placement="leader", requests=total_commits,
                              command="payload",
                              value_bytes=config.value_bytes),
        drive="catchup_wan", timeout=config.timeout,
        params={"chunked": chunked,
                "warmup_commits": config.warmup_commits})


@drive("catchup_wan")
def drive_catchup_wan(cluster, spec: ScenarioSpec) -> WanRun:
    ctx = RunContext(cluster, spec)
    cluster.start_all()
    ctx.initial_leader = elect_flat_leader(cluster, spec)
    attach_workloads(cluster, spec, ctx, ctx.initial_leader)
    run_commit_triggered_events(ctx)
    victim = ctx.fired[0][2][0]
    run_workload_to_completion(ctx)
    leader_engine = cluster.servers[cluster.run_until_leader()].engine
    target = leader_engine.commit_index
    if leader_engine.log.snapshot_index <= spec.params["warmup_commits"]:
        raise ExperimentError("leader never compacted past the crash point")
    snapshot_bytes = snapshot_wire_size(leader_engine.snapshot_store.latest)
    ctx.faults.silent_return(victim)
    ctx.faults.recover(victim)
    started = cluster.loop.now()
    if not cluster.run_until(
            lambda: cluster.servers[victim].engine.commit_index >= target,
            timeout=spec.timeout):
        raise ExperimentError(
            f"{victim} caught up only to "
            f"{cluster.servers[victim].engine.commit_index}/{target}")
    catchup_time = cluster.loop.now() - started
    cluster.run_for(1.0)
    run_safety_checks(cluster.servers.values(), cluster.trace)
    recovered = cluster.servers[victim]
    return WanRun(
        mode="chunked" if spec.params["chunked"] else "monolithic",
        total_commits=spec.workload.requests,
        snapshot_bytes=snapshot_bytes,
        catchup_time=catchup_time,
        installs=recovered.engine.snapshots_installed,
        chunks_sent=sum(s.engine.snapshot_chunks_sent
                        for s in cluster.servers.values()))


def wan_cells(config: WanCatchupConfig) -> list[Cell]:
    return [Cell(key=(total_commits, chunked),
                 spec=wan_spec(config, total_commits, chunked),
                 seed=config.seed)
            for total_commits in config.size_points
            for chunked in (False, True)]


def run_wan_catchup(config: WanCatchupConfig,
                    jobs: int = 1) -> WanCatchupResult:
    """Every size point in both transfer modes, same seed and scenario."""
    if config.engine not in ("raft", "fastraft"):
        raise ExperimentError(
            f"WAN variant runs the flat engines, not {config.engine!r}")
    runs = SweepRunner(jobs).run(wan_cells(config))
    return WanCatchupResult(
        config=config,
        runs=[runs[(total_commits, chunked)]
              for total_commits in config.size_points
              for chunked in (False, True)])


def _check_craft_consistency(deployment, topo, cluster_name: str) -> None:
    """Local committed-prefix agreement in the churned cluster, plus
    global state-machine agreement across every site at the same global
    apply point (the snapshot path must not introduce divergence)."""
    engines = [deployment.servers[n].local_engine
               for n in topo.nodes_in_cluster(cluster_name)]
    check_committed_prefix_agreement(engines)
    check_images_agree(
        ((s.global_applied_index, s.global_state_machine.snapshot(), s.name)
         for s in deployment.servers.values()
         if s.global_state_machine is not None),
        what="global state machines")


# ----------------------------------------------------------------------
# Registry entries
# ----------------------------------------------------------------------
def _catchup_configs(mode: str) -> list[CatchupConfig]:
    maker = {"quick": CatchupConfig.quick, "full": CatchupConfig.paper,
             "smoke": CatchupConfig.smoke}[mode]
    return [maker(engine) for engine in ENGINES]


register_scenario(Scenario(
    name="catchup",
    description="Rejoin catch-up under churn, snapshots vs full replay, "
                "all three engines",
    make_config=_catchup_configs,
    run=run_catchup_suite,
    modes=("quick", "full", "smoke")))


register_scenario(Scenario(
    name="catchup_wan",
    description="WAN rejoin over a bandwidth-limited link: monolithic vs "
                "chunked InstallSnapshot",
    make_config=lambda mode: {"quick": WanCatchupConfig.quick,
                              "full": WanCatchupConfig.paper,
                              "smoke": WanCatchupConfig.smoke}[mode](
                                  "fastraft"),
    run=run_wan_catchup,
    modes=("quick", "full", "smoke")))
