"""Rejoin-to-caught-up latency under churn, with and without snapshots.

The fig4-style churn scenario stressed end to end: a follower crashes
early, the cluster keeps committing (and, in Fast Raft, evicts the silent
member), and the node later recovers and has to catch back up. Without
compaction the leader replays the whole log from the follower's crash
point -- O(history) per rejoin, quadratic over a long churn run. With a
:class:`~repro.snapshot.CompactionPolicy` the leader's log prefix is
gone, so it ships one InstallSnapshot plus the retained tail instead.

The experiment runs the same scenario twice (snapshots on/off) per
engine -- classic Raft, Fast Raft, and C-Raft (where the churned node is
a cluster member catching up at the local level, inheriting the global
image through the composite local snapshot) -- and reports rejoin
latency, replayed entry counts, and snapshot counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.consensus.timing import TimingConfig
from repro.errors import ExperimentError
from repro.experiments.base import ResultTable, require
from repro.fastraft.server import FastRaftServer
from repro.harness.builder import build_cluster
from repro.harness.checkers import (
    check_committed_prefix_agreement,
    check_images_agree,
    run_safety_checks,
)
from repro.harness.faults import FaultInjector
from repro.harness.workload import ClosedLoopWorkload
from repro.metrics.summary import SnapshotCounters, tally_snapshots
from repro.net.latency import RegionLatencyModel
from repro.net.topology import Topology
from repro.craft.batching import BatchPolicy
from repro.craft.deployment import build_craft_deployment
from repro.raft.server import RaftServer
from repro.smr.kv import KVStateMachine
from repro.snapshot import CompactionPolicy

ENGINES = ("raft", "fastraft", "craft")


@dataclass(frozen=True)
class CatchupConfig:
    engine: str = "fastraft"
    n_sites: int = 5              # per-cluster sites for craft: 3 + 3
    warmup_commits: int = 20      # commits before the crash
    total_commits: int = 160      # commits before the recovery
    threshold: int = 40           # compaction trigger (entries)
    retain: int = 8               # committed tail kept below the snapshot
    max_append_batch: int = 16    # smaller batches make replay cost visible
    craft_batch_size: int = 10
    seed: int = 11
    timeout: float = 600.0

    @classmethod
    def paper(cls, engine: str) -> "CatchupConfig":
        return cls(engine=engine)

    @classmethod
    def quick(cls, engine: str) -> "CatchupConfig":
        commits = 100 if engine == "craft" else 120
        return cls(engine=engine, total_commits=commits)


@dataclass
class CatchupRun:
    """One scenario execution (snapshots on or off)."""

    snapshots_enabled: bool
    target_commit: int            # commit point the rejoiner had to reach
    catchup_time: float           # recovery -> caught up (sim seconds)
    replayed_entries: int         # entries applied at the rejoiner
    installs: int                 # snapshots installed at the rejoiner
    counters: SnapshotCounters    # cluster-wide snapshot activity


@dataclass
class CatchupResult:
    config: CatchupConfig
    with_snapshots: CatchupRun
    without_snapshots: CatchupRun

    def table(self) -> ResultTable:
        table = ResultTable(
            f"Rejoin catch-up under churn -- {self.config.engine}",
            ["mode", "target", "replayed", "installs", "catchup (ms)"])
        for run in (self.without_snapshots, self.with_snapshots):
            mode = "snapshots" if run.snapshots_enabled else "full replay"
            table.add_row(mode, run.target_commit, run.replayed_entries,
                          run.installs, run.catchup_time * 1000)
        snap = self.with_snapshots
        table.add_note(snap.counters.format())
        table.add_note(
            f"crash after {self.config.warmup_commits} commits, recover "
            f"after {self.config.total_commits}; compaction threshold "
            f"{self.config.threshold}, retain {self.config.retain}")
        return table

    def check_shape(self) -> None:
        snap, full = self.with_snapshots, self.without_snapshots
        require(full.installs == 0,
                "no snapshot may be installed with compaction disabled")
        require(snap.installs >= 1,
                "the rejoiner should catch up via InstallSnapshot")
        require(snap.counters.taken >= 1,
                "the compaction policy should have fired")
        require(snap.replayed_entries < full.replayed_entries,
                f"snapshots must replay strictly fewer entries "
                f"({snap.replayed_entries} vs {full.replayed_entries})")
        require(snap.catchup_time < full.catchup_time,
                f"snapshots must catch up strictly faster "
                f"({snap.catchup_time * 1000:.0f} ms vs "
                f"{full.catchup_time * 1000:.0f} ms)")

    def as_dict(self) -> dict:
        def run_dict(run: CatchupRun) -> dict:
            return {"target": run.target_commit,
                    "replayed": run.replayed_entries,
                    "installs": run.installs,
                    "catchup_ms": run.catchup_time * 1000,
                    "snapshots_taken": run.counters.taken,
                    "snapshots_shipped": run.counters.shipped,
                    "entries_compacted": run.counters.entries_compacted}
        return {"engine": self.config.engine,
                "total_commits": self.config.total_commits,
                "with_snapshots": run_dict(self.with_snapshots),
                "full_replay": run_dict(self.without_snapshots)}


def run_catchup(config: CatchupConfig) -> CatchupResult:
    """Run the scenario twice (with/without snapshots) and pair them."""
    if config.engine not in ENGINES:
        raise ExperimentError(f"unknown engine: {config.engine!r}")
    runner = _run_craft if config.engine == "craft" else _run_flat
    return CatchupResult(
        config=config,
        with_snapshots=runner(config, snapshots=True),
        without_snapshots=runner(config, snapshots=False))


def _policy(config: CatchupConfig, snapshots: bool) -> CompactionPolicy | None:
    if not snapshots:
        return None
    return CompactionPolicy(threshold=config.threshold,
                            retain=config.retain)


# ----------------------------------------------------------------------
# Single-cluster engines (classic Raft, Fast Raft)
# ----------------------------------------------------------------------
def _run_flat(config: CatchupConfig, snapshots: bool) -> CatchupRun:
    server_cls = RaftServer if config.engine == "raft" else FastRaftServer
    timing = TimingConfig(max_append_batch=config.max_append_batch)
    cluster = build_cluster(
        server_cls, n_sites=config.n_sites, seed=config.seed,
        timing=timing, state_machine_factory=KVStateMachine,
        compaction=_policy(config, snapshots))
    cluster.start_all()
    leader_name = cluster.run_until_leader(timeout=30.0)
    client = cluster.add_client(site=leader_name)
    workload = ClosedLoopWorkload(client,
                                  max_requests=config.total_commits)
    workload.start()
    if not cluster.run_until(
            lambda: workload.completed_count >= config.warmup_commits,
            timeout=config.timeout):
        raise ExperimentError("warmup did not complete")
    faults = FaultInjector(cluster)
    victim = next(n for n in cluster.servers if n != leader_name)
    faults.crash(victim)
    if not cluster.run_until(lambda: workload.done, timeout=config.timeout):
        raise ExperimentError(
            f"finished only {workload.completed_count}"
            f"/{config.total_commits} commits")
    target = cluster.servers[cluster.run_until_leader()].engine.commit_index
    faults.recover(victim)
    started = cluster.loop.now()
    rejoined = cluster.run_until(
        lambda: cluster.servers[victim].engine.commit_index >= target,
        timeout=config.timeout)
    if not rejoined:
        raise ExperimentError(
            f"{victim} caught up only to "
            f"{cluster.servers[victim].engine.commit_index}/{target}")
    catchup_time = cluster.loop.now() - started
    cluster.run_for(1.0)
    run_safety_checks(cluster.servers.values(), cluster.trace)
    recovered = cluster.servers[victim]
    return CatchupRun(
        snapshots_enabled=snapshots, target_commit=target,
        catchup_time=catchup_time,
        replayed_entries=len(recovered.applied_log),
        installs=recovered.engine.snapshots_installed,
        counters=tally_snapshots(s.engine
                                 for s in cluster.servers.values()))


# ----------------------------------------------------------------------
# C-Raft (the churned node is a cluster member)
# ----------------------------------------------------------------------
def _run_craft(config: CatchupConfig, snapshots: bool) -> CatchupRun:
    topo = Topology.even_clusters(6, ["east", "west"])
    latency = RegionLatencyModel(dict(topo.node_regions),
                                 {("east", "west"): 0.080},
                                 intra_rtt=0.0008, jitter=0.1)
    deployment = build_craft_deployment(
        topo, latency, seed=config.seed,
        local_timing=TimingConfig(max_append_batch=config.max_append_batch),
        batch_policy=BatchPolicy(batch_size=config.craft_batch_size),
        state_machine_factory=KVStateMachine,
        local_compaction=_policy(config, snapshots))
    deployment.start_all()
    deployment.run_until_local_leaders(timeout=30.0)
    deployment.run_until_global_ready(timeout=60.0)
    cluster_a = topo.clusters[0]
    leader_a = deployment.local_leader(cluster_a)
    client = deployment.add_client(site=leader_a)
    workload = ClosedLoopWorkload(client,
                                  max_requests=config.total_commits)
    workload.start()
    if not deployment.run_until(
            lambda: workload.completed_count >= config.warmup_commits,
            timeout=config.timeout):
        raise ExperimentError("warmup did not complete")
    victim = next(n for n in topo.nodes_in_cluster(cluster_a)
                  if n != leader_a)
    deployment.servers[victim].crash()
    if not deployment.run_until(lambda: workload.done,
                                timeout=config.timeout):
        raise ExperimentError(
            f"finished only {workload.completed_count}"
            f"/{config.total_commits} commits")
    leader_now = deployment.local_leader(cluster_a)
    target = deployment.servers[leader_now].local_engine.commit_index
    deployment.servers[victim].recover()
    started = deployment.loop.now()
    rejoined = deployment.run_until(
        lambda: (deployment.servers[victim].local_engine.commit_index
                 >= target),
        timeout=config.timeout, step=0.01)
    if not rejoined:
        raise ExperimentError(
            f"{victim} caught up only to "
            f"{deployment.servers[victim].local_engine.commit_index}"
            f"/{target}")
    catchup_time = deployment.loop.now() - started
    deployment.run_for(2.0)
    _check_craft_consistency(deployment, topo, cluster_a)
    recovered = deployment.servers[victim]
    return CatchupRun(
        snapshots_enabled=snapshots, target_commit=target,
        catchup_time=catchup_time,
        replayed_entries=len(recovered.applied_log),
        installs=recovered.local_engine.snapshots_installed,
        counters=tally_snapshots(
            s.local_engine for s in deployment.servers.values()))


def _check_craft_consistency(deployment, topo, cluster_name: str) -> None:
    """Local committed-prefix agreement in the churned cluster, plus
    global state-machine agreement across every site at the same global
    apply point (the snapshot path must not introduce divergence)."""
    engines = [deployment.servers[n].local_engine
               for n in topo.nodes_in_cluster(cluster_name)]
    check_committed_prefix_agreement(engines)
    check_images_agree(
        ((s.global_applied_index, s.global_state_machine.snapshot(), s.name)
         for s in deployment.servers.values()
         if s.global_state_machine is not None),
        what="global state machines")
