"""Figure 4: Fast Raft commit-latency timeline across a silent leave.

Paper setup: five sites, 5 % message loss, member timeout after five
missed heartbeat responses; two sites leave silently mid-run (the vertical
red line in the figure). Before the leave the proposer mostly rides the
fast track (fast quorum 4 of 5); right after it, the fast track is
unavailable and a latency spike above 200 ms appears around the
configuration change; once the leader commits the exclusion entries the
fast quorum shrinks to 3 of 3 and latency returns to the 50-100 ms band.

The silent leaves are declared in the scenario's
:class:`~repro.scenarios.spec.EventSchedule` (commit-count triggered),
not hand-scripted -- the same vocabulary every other churn scenario uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.consensus.timing import TimingConfig
from repro.experiments.base import ResultTable, require
from repro.metrics.summary import summarize
from repro.scenarios.registry import Scenario, register_scenario
from repro.scenarios.runner import RunContext, SweepRunner, probe
from repro.scenarios.spec import (
    Cell,
    Event,
    EventSchedule,
    LossSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)


@dataclass(frozen=True)
class Fig4Config:
    n_sites: int = 5
    loss_rate: float = 0.05
    leavers: int = 2
    warmup_commits: int = 40      # commits before the leave
    total_commits: int = 160      # commits overall
    settle_time: float = 3.0      # post-leave horizon treated as recovery
    seed: int = 7
    timing: TimingConfig = field(default_factory=TimingConfig.intra_cluster)
    timeout: float = 900.0

    @classmethod
    def paper(cls) -> "Fig4Config":
        return cls()

    @classmethod
    def quick(cls) -> "Fig4Config":
        return cls(warmup_commits=15, total_commits=80)

    @classmethod
    def smoke(cls) -> "Fig4Config":
        return cls(warmup_commits=10, total_commits=60)


@dataclass
class Fig4Result:
    config: Fig4Config
    leave_time: float
    #: (submit time relative to the leave, latency) per committed proposal.
    timeline: list[tuple[float, float]]
    final_members: tuple[str, ...]
    final_fast_quorum: int

    def phase_latencies(self) -> tuple[list[float], list[float], list[float]]:
        """(pre-leave, transition, recovered) latency groups."""
        pre, transition, recovered = [], [], []
        for offset, latency in self.timeline:
            if offset < 0:
                pre.append(latency)
            elif offset < self.config.settle_time:
                transition.append(latency)
            else:
                recovered.append(latency)
        return pre, transition, recovered

    def table(self) -> ResultTable:
        pre, transition, recovered = self.phase_latencies()
        table = ResultTable(
            "Fig. 4 -- Fast Raft latency around two silent leaves (ms)",
            ["phase", "commits", "mean", "p95", "max"])
        for name, values in (("before leave", pre),
                             ("transition", transition),
                             ("recovered", recovered)):
            if values:
                stats = summarize(values)
                table.add_row(name, stats.count, stats.mean * 1000,
                              stats.p95 * 1000, stats.maximum * 1000)
            else:
                table.add_row(name, 0, float("nan"), float("nan"),
                              float("nan"))
        table.add_note(f"members after recovery: "
                       f"{list(self.final_members)}, fast quorum "
                       f"{self.final_fast_quorum}")
        table.add_note(f"silent leave at t={self.leave_time:.2f}s, loss "
                       f"{self.config.loss_rate:.0%}, member timeout "
                       f"{self.config.timing.member_timeout_beats} beats")
        return table

    def check_shape(self) -> None:
        pre, transition, recovered = self.phase_latencies()
        require(bool(pre) and bool(recovered),
                "need commits on both sides of the leave")
        pre_mean = sum(pre) / len(pre)
        recovered_mean = sum(recovered) / len(recovered)
        peak = max(transition + recovered) if (transition or recovered) else 0
        require(peak > 2 * pre_mean,
                f"expected a churn spike >2x the steady state "
                f"(pre {pre_mean * 1000:.0f} ms, peak {peak * 1000:.0f} ms)")
        require(recovered_mean < 2.0 * pre_mean,
                f"latency should return near the pre-leave band "
                f"(pre {pre_mean * 1000:.0f} ms, recovered "
                f"{recovered_mean * 1000:.0f} ms)")
        expected_size = self.config.n_sites - self.config.leavers
        require(len(self.final_members) == expected_size,
                f"configuration should shrink to {expected_size} members, "
                f"got {list(self.final_members)}")


@probe("fig4_timeline")
def probe_fig4_timeline(ctx: RunContext) -> dict:
    """Latency timeline relative to the (first) scheduled leave, plus the
    recovered configuration at the initial leader.

    The proposer sits on the leader's site so that proposer-side retries
    never mask the protocol's own latency (as in the paper's timeline).
    """
    leave_time = ctx.fired[0][0]
    engine = ctx.system.servers[ctx.initial_leader].engine
    timeline = [(record.submitted_at - leave_time, record.latency)
                for record in ctx.workloads[0].records if record.done]
    return {"leave_time": leave_time,
            "timeline": timeline,
            "final_members": engine.configuration.members,
            "final_fast_quorum": engine.configuration.fast_quorum}


def fig4_spec(config: Fig4Config) -> ScenarioSpec:
    schedule = EventSchedule(tuple(
        Event("silent_leave", target=f"nonleader:{i}",
              after_commits=config.warmup_commits)
        for i in range(config.leavers)))
    return ScenarioSpec(
        name="fig4.silent_leave", engine="fastraft",
        topology=TopologySpec(n_sites=config.n_sites),
        timing=config.timing, loss=LossSpec(config.loss_rate),
        schedule=schedule,
        workload=WorkloadSpec(placement="leader",
                              requests=config.total_commits),
        probe="fig4_timeline", settle=1.0, timeout=config.timeout)


def fig4_cells(config: Fig4Config) -> list[Cell]:
    return [Cell(key=("timeline",), spec=fig4_spec(config),
                 seed=config.seed)]


def run_fig4(config: Fig4Config | None = None, jobs: int = 1) -> Fig4Result:
    config = config or Fig4Config.paper()
    metrics = SweepRunner(jobs).map(fig4_cells(config))[0]
    return Fig4Result(config=config,
                      leave_time=metrics["leave_time"],
                      timeline=metrics["timeline"],
                      final_members=metrics["final_members"],
                      final_fast_quorum=metrics["final_fast_quorum"])


register_scenario(Scenario(
    name="fig4",
    description="Fast Raft latency timeline across two silent leaves "
                "(Fig. 4)",
    make_config=lambda mode: {"quick": Fig4Config.quick,
                              "full": Fig4Config.paper,
                              "smoke": Fig4Config.smoke}[mode](),
    run=run_fig4,
    modes=("quick", "full", "smoke")))
