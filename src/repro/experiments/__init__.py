"""Experiment drivers regenerating the paper's evaluation (Section VI).

One module per figure, each declared as scenario cells over the
:mod:`repro.scenarios` subsystem (spec + registry + parallel sweep
runner):

- :mod:`repro.experiments.rounds` -- message-flow validation of Figs. 1-2
  (commit hop counts over a constant-latency network).
- :mod:`repro.experiments.fig3_latency` -- classic Raft vs Fast Raft
  commit latency across message-loss rates (Fig. 3).
- :mod:`repro.experiments.fig4_churn` -- Fast Raft latency timeline while
  two of five sites leave silently (Fig. 4).
- :mod:`repro.experiments.fig5_throughput` -- classic Raft vs C-Raft
  global throughput across cluster counts (Fig. 5).
- :mod:`repro.experiments.ablations` -- sweeps over the design knobs that
  DESIGN.md calls out (decision interval, batch size, dispatch policy,
  proposer count).
- :mod:`repro.experiments.catchup` -- rejoin catch-up under churn with
  and without snapshots, plus the WAN chunked-transfer variant.
- :mod:`repro.experiments.flapping` -- a flapping WAN link with
  short-lived stability windows (beyond the paper's figures).
- :mod:`repro.experiments.migrated_region` -- a whole region migrating
  in after global compaction (the gated global snapshot path at scale).

Each driver accepts a config dataclass with a ``quick()`` preset (used by
tests) and a ``paper()`` preset (used by the benchmark harness), returns a
result object with the measured rows, renders the paper-style table via
``result.table()``, and enforces the expected *shape* (who wins, by
roughly what factor, where crossovers fall) via ``result.check_shape()``.
Every ``run_*`` function takes ``jobs=N`` to fan its sweep cells out
across worker processes with results identical to serial.

Run from the command line::

    python -m repro.experiments fig3 --quick
    python -m repro.experiments --scenario flapping_wan --jobs 4
"""

from repro.experiments.base import ResultTable, cell_seed
from repro.experiments.fig3_latency import Fig3Config, run_fig3
from repro.experiments.fig4_churn import Fig4Config, run_fig4
from repro.experiments.fig5_throughput import Fig5Config, run_fig5
from repro.experiments.rounds import RoundsConfig, run_rounds

__all__ = [
    "Fig3Config",
    "Fig4Config",
    "Fig5Config",
    "ResultTable",
    "RoundsConfig",
    "cell_seed",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_rounds",
]
