"""Flapping-WAN-link scenario: consensus under short-lived stability.

Related work (Winkler et al., "Consensus in Rooted Dynamic Networks with
Short-Lived Stability", PAPERS.md) studies exactly this regime: the
network is mostly partitioned and only intermittently stable, and
consensus must land its rounds inside the stability windows. None of the
paper's own figures exercise it -- and before the scenario subsystem we
could not express it without writing a seventh driver.

Here it is purely declarative: a two-region Raft cluster (three core
sites, two edge sites across a WAN link), a proposer on the *edge* side,
and an :class:`~repro.scenarios.spec.EventSchedule` built by
``EventSchedule.flapping_link`` that cuts and heals the WAN link on a
cycle. While the link is down the edge proposer's traffic cannot reach
the core majority, so its commits cluster into the stability windows;
the probe classifies every commit by completion time against the
schedule's outage intervals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.base import ResultTable, require
from repro.metrics.summary import summarize
from repro.scenarios.registry import Scenario, register_scenario
from repro.scenarios.runner import RunContext, SweepRunner, probe
from repro.scenarios.spec import (
    Cell,
    EventSchedule,
    LatencySpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)

CORE = ("n0", "n1", "n2")
EDGE = ("n3", "n4")


@dataclass(frozen=True)
class FlappingConfig:
    requests: int = 60            # commits the edge proposer must land
    first_outage: float = 2.0     # initial calm (election + warmup)
    outage: float = 0.8           # seconds the WAN link is down per cycle
    stable: float = 1.5           # stability-window length
    cycles: int = 6
    wan_rtt: float = 0.080        # core <-> edge round trip
    seed: int = 3
    timeout: float = 300.0

    @classmethod
    def paper(cls) -> "FlappingConfig":
        return cls()

    @classmethod
    def quick(cls) -> "FlappingConfig":
        return cls()

    @classmethod
    def smoke(cls) -> "FlappingConfig":
        return cls(requests=25, cycles=3)


@dataclass
class FlappingResult:
    config: FlappingConfig
    completed: int
    stable_commits: int           # completions inside stability windows
    outage_commits: int           # completions while the link was down
    mean_latency: float
    max_latency: float
    outage_time: float            # total seconds the link was down
    duration: float               # sim time to land every commit

    def table(self) -> ResultTable:
        table = ResultTable(
            "Flapping WAN link -- edge-proposer commits vs stability "
            "windows",
            ["commits", "in stable window", "during outage", "mean ms",
             "max ms"])
        table.add_row(self.completed, self.stable_commits,
                      self.outage_commits, self.mean_latency * 1000,
                      self.max_latency * 1000)
        table.add_note(
            f"{self.config.cycles} cycles of {self.config.outage:.1f}s "
            f"outage / {self.config.stable:.1f}s stability; link down "
            f"{self.outage_time:.1f}s of {self.duration:.1f}s total")
        return table

    def check_shape(self) -> None:
        require(self.completed == self.config.requests,
                f"every proposal must eventually commit "
                f"({self.completed}/{self.config.requests})")
        require(self.stable_commits >= 4 * max(1, self.outage_commits),
                f"commits should cluster into the stability windows "
                f"({self.stable_commits} stable vs "
                f"{self.outage_commits} during outages)")
        require(self.max_latency > self.config.outage,
                f"some proposal should have spanned an outage "
                f"(max {self.max_latency:.2f}s vs outage "
                f"{self.config.outage:.2f}s)")


@probe("flap_phases")
def probe_flap_phases(ctx: RunContext) -> dict:
    """Classify each committed proposal by completion time against the
    outage windows as they *actually fired* (startup can clamp an early
    scheduled event later than declared, so ``ctx.fired`` is the truth)."""
    outages = []
    start = None
    for when, event, _ in ctx.fired:
        if event.action == "partition" and start is None:
            start = when
        elif event.action == "heal_partition" and start is not None:
            outages.append((start, when))
            start = None
    if start is not None:
        # The run ended (workload done + settle) before the final heal
        # fired: the link was down through the end of the measurement.
        outages.append((start, ctx.system.loop.now()))

    def in_outage(when: float) -> bool:
        return any(start <= when < end for start, end in outages)

    records = [r for r in ctx.workloads[0].records if r.done]
    outage_commits = sum(1 for r in records if in_outage(r.committed_at))
    stats = summarize([r.latency for r in records])
    return {"completed": len(records),
            "stable_commits": len(records) - outage_commits,
            "outage_commits": outage_commits,
            "mean_latency": stats.mean,
            "max_latency": stats.maximum,
            "outage_time": sum(end - start for start, end in outages),
            "duration": max(r.committed_at for r in records)}


def flapping_spec(config: FlappingConfig) -> ScenarioSpec:
    return ScenarioSpec(
        name="flapping_wan", engine="raft",
        topology=TopologySpec(n_sites=5, regions=("core", "edge"),
                              region_sizes=(3, 2)),
        latency=LatencySpec(kind="rtt_matrix",
                            rtts=(("core", "edge", config.wan_rtt),),
                            intra_rtt=0.0008, jitter=0.1),
        schedule=EventSchedule.flapping_link(
            (CORE, EDGE), first_outage=config.first_outage,
            outage=config.outage, stable=config.stable,
            cycles=config.cycles),
        workload=WorkloadSpec(placement="sites", sites=(EDGE[0],),
                              requests=config.requests),
        probe="flap_phases", settle=1.0, timeout=config.timeout)


def flapping_cells(config: FlappingConfig) -> list[Cell]:
    return [Cell(key=("flap",), spec=flapping_spec(config),
                 seed=config.seed)]


def run_flapping(config: FlappingConfig | None = None,
                 jobs: int = 1) -> FlappingResult:
    config = config or FlappingConfig.paper()
    metrics = SweepRunner(jobs).map(flapping_cells(config))[0]
    return FlappingResult(config=config, **metrics)


register_scenario(Scenario(
    name="flapping_wan",
    description="Edge proposer across a flapping WAN link: commits land "
                "in short-lived stability windows",
    make_config=lambda mode: {"quick": FlappingConfig.quick,
                              "full": FlappingConfig.paper,
                              "smoke": FlappingConfig.smoke}[mode](),
    run=run_flapping,
    modes=("quick", "full", "smoke")))
