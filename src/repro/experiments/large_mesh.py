"""Large-mesh scenario: C-Raft across >= 6 clusters x 5 nodes under
flapping inter-region links.

The paper's own figures stop at 20 sites; this scenario is the dynamic-
network workload the scenario subsystem (PR 3) was built to express and
the simulation-core speedup (PR 5) makes tractable in CI smoke: thirty
sites running two consensus levels each, with one region's WAN uplink
flapping on a cycle (the short-lived-stability regime of Winkler et
al.) while every cluster keeps proposing. The metric is the Fig. 5
metric -- entries committed to the global log per second over a
measurement window -- now under sustained churn of the mesh itself.

Also the ``craft_mesh_6x5`` cell of ``benchmarks/bench_perf.py``: the
multi-cluster, two-level-engine shape exercises the simulation core
differently from the flat cells (an order of magnitude more timers and
messages in flight), so the perf trajectory tracks it separately.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.consensus.timing import TimingConfig
from repro.craft.batching import BatchPolicy
from repro.errors import ExperimentError
from repro.experiments.base import ResultTable, cell_seed, require
from repro.experiments.regions import regions_for
from repro.net.topology import Topology
from repro.scenarios.registry import Scenario, register_scenario
from repro.scenarios.runner import SweepRunner
from repro.scenarios.spec import (
    Cell,
    EventSchedule,
    LatencySpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.smr.kv import KVStateMachine


@dataclass(frozen=True)
class LargeMeshConfig:
    clusters: int = 6
    sites_per_cluster: int = 5
    batch_size: int = 10
    max_outstanding_batches: int = 8
    duration: float = 60.0        # measurement window (sim seconds)
    warmup: float = 12.0          # after global ready, before measuring
    #: Flapping cycle for the cut region's WAN uplink. ``first_outage``
    #: is absolute sim time; election + global bootstrap finish well
    #: before it at every scale this scenario registers.
    first_outage: float = 30.0
    outage: float = 2.0
    stable: float = 4.0
    cycles: int = 8
    seed: int = 5

    def __post_init__(self) -> None:
        if self.clusters < 6 or self.sites_per_cluster < 5:
            raise ExperimentError(
                "large_mesh means large: >= 6 clusters x 5 sites "
                f"(got {self.clusters} x {self.sites_per_cluster})")

    @property
    def total_sites(self) -> int:
        return self.clusters * self.sites_per_cluster

    @classmethod
    def paper(cls) -> "LargeMeshConfig":
        return cls()

    @classmethod
    def quick(cls) -> "LargeMeshConfig":
        return cls(duration=30.0, cycles=5)

    @classmethod
    def smoke(cls) -> "LargeMeshConfig":
        # Still the full 6x5 mesh -- shrinking the topology would defeat
        # the point of smoking it; only the window shortens.
        return cls(duration=18.0, warmup=8.0, first_outage=24.0,
                   outage=1.5, stable=3.0, cycles=4)


@dataclass
class LargeMeshResult:
    config: LargeMeshConfig
    throughput: float             # global commits/s under flapping

    def table(self) -> ResultTable:
        config = self.config
        table = ResultTable(
            "Large mesh -- C-Raft global throughput under a flapping "
            "WAN uplink (entries/s)",
            ["clusters", "sites", "throughput"])
        table.add_row(config.clusters, config.total_sites, self.throughput)
        table.add_note(
            f"{config.cycles} cycles of {config.outage:.1f}s outage / "
            f"{config.stable:.1f}s stability cutting one region; "
            f"{config.duration:.0f}s window, batch {config.batch_size}")
        return table

    def check_shape(self) -> None:
        require(self.throughput > 0.0,
                "the mesh must keep committing globally while one "
                f"region flaps (got {self.throughput:.2f}/s)")


def large_mesh_spec(config: LargeMeshConfig) -> ScenarioSpec:
    regions = regions_for(config.clusters)
    topology = Topology.even_clusters(config.total_sites, regions)
    # The last region's uplink flaps: everyone else in one group, the
    # cut cluster in the other. Intra-cluster links stay up throughout,
    # so its local consensus survives each outage and rejoins the
    # global level in the stability windows.
    cut = regions[-1]
    cut_sites = tuple(topology.nodes_in_cluster(cut))
    rest = tuple(n for n in topology.nodes if n not in cut_sites)
    return ScenarioSpec(
        name="large_mesh", engine="craft",
        topology=TopologySpec(n_sites=config.total_sites,
                              regions=tuple(regions)),
        timing=TimingConfig.intra_cluster(),
        global_timing=TimingConfig.inter_cluster(),
        batch=BatchPolicy(batch_size=config.batch_size,
                          max_outstanding=config.max_outstanding_batches),
        latency=LatencySpec.aws_regions(),
        schedule=EventSchedule.flapping_link(
            (rest, cut_sites), first_outage=config.first_outage,
            outage=config.outage, stable=config.stable,
            cycles=config.cycles),
        trace=False, state_machine=KVStateMachine,
        workload=WorkloadSpec(
            placement="sites",
            sites=tuple(topology.nodes_in_cluster(r)[0] for r in regions),
            command="keyed", prefixes=tuple(regions)),
        drive="throughput_window",
        params={"warmup": config.warmup, "duration": config.duration,
                "global_ready_timeout": 120.0})


def large_mesh_cells(config: LargeMeshConfig) -> list[Cell]:
    return [Cell(key=("large_mesh",), spec=large_mesh_spec(config),
                 seed=cell_seed(config.seed, "large_mesh"))]


def run_large_mesh(config: LargeMeshConfig | None = None,
                   jobs: int = 1) -> LargeMeshResult:
    config = config or LargeMeshConfig.paper()
    throughput = SweepRunner(jobs).map(large_mesh_cells(config))[0]
    return LargeMeshResult(config=config, throughput=throughput)


register_scenario(Scenario(
    name="large_mesh",
    description="6x5 C-Raft mesh with a flapping WAN uplink: global "
                "throughput under sustained dynamic-network churn",
    make_config=lambda mode: {"quick": LargeMeshConfig.quick,
                              "full": LargeMeshConfig.paper,
                              "smoke": LargeMeshConfig.smoke}[mode](),
    run=run_large_mesh,
    modes=("quick", "full", "smoke")))
