"""Quorum arithmetic.

Classic quorum: a strict majority, ``floor(M/2) + 1``.
Fast quorum (Fast Paxos / Fast Raft): ``ceil(3M/4)``.

The correctness requirement (Zhao 2015, used in the paper's Lemma 2) is
that any classic quorum and any fast quorum intersect in more than half of
the classic quorum, so an entry inserted by a fast quorum has a strict
plurality of the votes in *any* classic quorum the leader might collect.
:func:`quorum_intersection_ok` checks that requirement directly and is
exercised for all cluster sizes by property tests.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError


def classic_quorum_size(members: int) -> int:
    """Strict majority of ``members``."""
    if members <= 0:
        raise ConfigurationError(f"need at least one member: {members!r}")
    return members // 2 + 1


def fast_quorum_size(members: int) -> int:
    """The paper's fast quorum, ``ceil(3M/4)``."""
    if members <= 0:
        raise ConfigurationError(f"need at least one member: {members!r}")
    return math.ceil(3 * members / 4)


def quorum_intersection_ok(members: int) -> bool:
    """Check the Fast Paxos safety condition for ``members`` sites.

    In the worst case a classic quorum CQ and a fast quorum FQ share
    ``CQ + FQ - M`` sites. Safety needs that shared part to be a strict
    majority of the classic quorum: every classic quorum the leader might
    hear from must reveal the fast-quorum entry as its plurality winner
    even if every other vote in the classic quorum went to a single rival.

    Plurality is guaranteed when ``overlap > CQ - overlap``, i.e.
    ``2 * (CQ + FQ - M) > CQ``.
    """
    cq = classic_quorum_size(members)
    fq = fast_quorum_size(members)
    overlap = cq + fq - members
    return 2 * overlap > cq
