"""RPC message types for all three protocols.

All messages are immutable dataclasses. ``AppendEntries.entries`` carries
explicit ``(index, entry)`` pairs because Fast Raft replicates ranges that
do not necessarily start at the follower's end of log.

The C-Raft :class:`Envelope` wraps any of these with a level tag so one
site can run intra-cluster and inter-cluster consensus side by side over
one network address.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.consensus.entry import LogEntry
from repro.net.sizes import HEADER_SIZE, SCALAR_SIZE, estimate_size
from repro.net.sizes import payload_size as _payload_size

IndexedEntries = tuple[tuple[int, LogEntry], ...]


def _wire_memo() -> Any:
    """Wire-size memo slot for messages with a ``payload_size`` method:
    messages are frozen, and sending one costs a size lookup per
    destination (and per retry under a size-aware latency model), so the
    first computation is stored on the instance. Excluded from sizing,
    comparison, and repr; ``init=False`` keeps constructors unchanged."""
    return field(default=None, init=False, repr=False, compare=False)


def _est_memo() -> Any:
    """Structural-estimate memo slot for messages sized by the generic
    :func:`repro.net.sizes.estimate_size` walk (see ``_est_size`` there):
    the walk itself fills and reuses it."""
    return field(default=None, init=False, repr=False, compare=False)


# ----------------------------------------------------------------------
# Client <-> site (co-located, reliable)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ClientRequest:
    """A client asks its attached site to get ``command`` committed.

    Session clients additionally carry a session id and a per-session
    sequence number; servers use the pair for exactly-once duplicate
    suppression over the at-least-once retry loop. The defaults keep
    plain (sessionless) clients wire-identical.
    """

    request_id: str
    command: Any
    session_id: str = ""
    sequence: int = 0


@dataclass(frozen=True, slots=True)
class ClientReply:
    """Outcome of a client request (sent on commit, or on redirect info)."""

    request_id: str
    ok: bool
    index: int | None = None
    info: str = ""


@dataclass(frozen=True, slots=True)
class ReadRequest:
    """A client asks its attached site for a linearizable local read.

    Served without touching the consensus path: a leader holding a
    quorum-renewed lease answers immediately; a follower answers after
    the next lease-carrying heartbeat proves the state it reads is at
    least as fresh as every write acknowledged before the read arrived.
    """

    request_id: str
    key: str


@dataclass(frozen=True, slots=True)
class ReadReply:
    """Outcome of a lease read (``ok=False``: no active lease -- the
    client retries, as with write timeouts)."""

    request_id: str
    ok: bool
    value: Any = None
    index: int | None = None
    info: str = ""


# ----------------------------------------------------------------------
# Proposals and votes
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ProposeToLeader:
    """Classic Raft: a site forwards a proposal to the term's leader."""

    entry: LogEntry
    _est_size: int | None = _est_memo()


@dataclass(frozen=True, slots=True)
class ProposeEntry:
    """Fast Raft: the proposing site broadcasts the entry for index
    ``index`` to every member (Fig. 2's first hop)."""

    index: int
    entry: LogEntry
    _est_size: int | None = _est_memo()


@dataclass(frozen=True, slots=True)
class VoteEntry:
    """Fast Raft: a site reports its slot content for ``index`` to the
    leader ("Send log[i] and commitIndex to leaderId")."""

    term: int
    index: int
    entry: LogEntry
    commit_index: int
    voter: str
    _est_size: int | None = _est_memo()


@dataclass(frozen=True, slots=True)
class CommitNotice:
    """Leader tells the origin site that its entry committed."""

    entry_id: str
    index: int
    term: int


# ----------------------------------------------------------------------
# Replication
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class AppendEntries:
    """Leader -> follower replication / heartbeat."""

    term: int
    leader_id: str
    prev_log_index: int
    prev_log_term: int
    entries: IndexedEntries
    leader_commit: int
    #: C-Raft: the local leader piggybacks the global commit index on its
    #: local AppendEntries so cluster members learn global commits.
    global_commit: int = 0
    #: Leader-lease piggyback (zero unless leases are enabled): the
    #: leader's clock when this beat was built, and how long its lease
    #: runs. Excluded from the sizing formula below -- the scalars only
    #: travel meaningfully when the lease feature is switched on.
    sent_at: float = 0.0
    lease_until: float = 0.0
    _wire_size: int | None = _wire_memo()

    def payload_size(self) -> int:
        """Wire size: fixed header fields plus the carried entries (the
        size-aware cost model charges replication batches by content).
        Memoized: a broadcast round reuses one message object across
        followers with equal nextIndex, so the entry walk happens once
        per round instead of once per destination."""
        cached = self._wire_size
        if cached is None:
            cached = (HEADER_SIZE + 5 * SCALAR_SIZE + len(self.leader_id)
                      + estimate_size(self.entries))
            object.__setattr__(self, "_wire_size", cached)
        return cached


@dataclass(frozen=True, slots=True)
class AppendEntriesResponse:
    term: int
    success: bool
    follower: str
    #: Highest index known replicated on the follower when ``success``.
    match_index: int
    #: Follower's last log index -- lets the leader cap nextIndex backoff.
    last_log_index: int
    #: Echo of the acked beat's ``AppendEntries.sent_at`` (zero unless
    #: leases are enabled) -- the leader renews its lease from the send
    #: time a quorum provably acked, never from response arrival times.
    beat_sent_at: float = 0.0


@dataclass(frozen=True, slots=True)
class InstallSnapshotRequest:
    """Leader -> follower: the follower's needed log prefix has been
    compacted away, so the leader ships its snapshot instead of entries.
    ``snapshot`` is a :class:`repro.snapshot.Snapshot` (typed ``Any`` to
    keep the message layer free of the storage layer).

    This is the *monolithic* transfer (``TransferConfig.chunk_size``
    unset); with chunking enabled the image travels as a sequence of
    :class:`InstallSnapshotChunk` messages instead."""

    term: int
    leader_id: str
    snapshot: Any
    _wire_size: int | None = _wire_memo()

    def payload_size(self) -> int:
        """The whole serialized image in one charge -- the same image
        bytes the chunked transfer ships in slices (which also pays
        per-chunk headers and acks, so chunking's measured advantage
        under a bandwidth-limited latency model is conservative).

        Serializing the image is O(image) real work and the network asks
        for the size on every send (including periodic re-ships), so the
        result is memoized on this frozen message."""
        cached = self._wire_size
        if cached is None:
            from repro.snapshot.chunking import snapshot_wire_size
            cached = (HEADER_SIZE + SCALAR_SIZE + len(self.leader_id)
                      + snapshot_wire_size(self.snapshot))
            object.__setattr__(self, "_wire_size", cached)
        return cached


@dataclass(frozen=True, slots=True)
class InstallSnapshotResponse:
    term: int
    follower: str
    #: The shipped snapshot's last included index (ack correlation).
    last_included_index: int
    success: bool


@dataclass(frozen=True, slots=True)
class InstallSnapshotChunk:
    """One slice of a chunked snapshot transfer (Raft's reference RPC:
    ``offset`` positions the slice, ``done`` marks the final one).

    ``last_included_index``/``last_included_term`` identify the snapshot
    so the follower can tell a stale transfer's stragglers from the
    current one; ``total_size`` lets it judge completeness without
    trusting chunk arrival order (the fabric reorders freely)."""

    term: int
    leader_id: str
    last_included_index: int
    last_included_term: int
    offset: int
    data: bytes
    total_size: int
    done: bool

    def payload_size(self) -> int:
        return (HEADER_SIZE + 5 * SCALAR_SIZE + len(self.leader_id)
                + len(self.data))


@dataclass(frozen=True, slots=True)
class InstallSnapshotChunkAck:
    """Follower -> leader: one chunk arrived (or was rejected as stale).
    The leader's send window advances on each ack; the final full-image
    acknowledgement is still :class:`InstallSnapshotResponse`, sent once
    the reassembled snapshot is installed."""

    term: int
    follower: str
    last_included_index: int
    offset: int
    success: bool = True


# ----------------------------------------------------------------------
# Elections
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class RequestVote:
    """Candidate -> all sites.

    For classic Raft ``last_log_index``/``last_log_term`` describe the
    candidate's last entry; for Fast Raft they describe the last
    *leader-approved* entry (self-approved entries are excluded from the
    up-to-date comparison, Section IV-C).
    """

    term: int
    candidate_id: str
    last_log_index: int
    last_log_term: int


@dataclass(frozen=True, slots=True)
class RequestVoteResponse:
    term: int
    vote_granted: bool
    voter: str
    #: Fast Raft recovery: granting voters attach every self-approved
    #: entry in their log.
    self_approved: IndexedEntries = ()
    _est_size: int | None = _est_memo()


# ----------------------------------------------------------------------
# Membership
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class JoinRequest:
    """A site asks to join the configuration (sent to any member;
    non-leaders forward it to the leader).

    ``replaces`` is a liveness hint from C-Raft's leader handoff: the
    previous cluster leader whose seat this joiner takes over. While the
    exclusion of ``replaces`` is pending and this joiner is fully caught
    up, the joiner's votes count toward the exclusion quorum -- that is
    what un-wedges a two-voter configuration whose other voter died."""

    site: str
    replaces: str | None = None


@dataclass(frozen=True, slots=True)
class JoinAccepted:
    """Leader -> joining site once the new configuration committed."""

    members: tuple[str, ...]
    leader_id: str


@dataclass(frozen=True, slots=True)
class LeaveRequest:
    """A site announces its departure (or the leader self-generates this
    after a member timeout for silent leaves).

    With ``as_observer`` the site does not leave outright: it asks to be
    *demoted* from voting member to standing non-voting observer (the
    bootstrap seed's retirement), keeping a replica alive as the
    tiebreaker for degenerate voting sets."""

    site: str
    as_observer: bool = False


@dataclass(frozen=True, slots=True)
class LeaveAccepted:
    """Leader -> departing site once the exclusion committed."""

    site: str


@dataclass(frozen=True, slots=True)
class NotInConfiguration:
    """Administrative notice to a site whose consensus message was ignored
    because it is not a configuration member; carries enough information
    for the site to rejoin. (The paper drops such messages silently and
    notes the site "will need to send a join request"; this notice is how
    the site learns that, without changing any consensus decision.)"""

    term: int
    members: tuple[str, ...]
    leader_hint: str | None


@dataclass(frozen=True, slots=True)
class RecoveryProbe:
    """Probe-before-trust recovery: a recovering site asks a peer whether
    its restored configuration still governs, instead of trusting a
    configuration that may be older than the member timeout. A site
    evicted while down restores a configuration that still lists it, so
    without this probe it idles as a silent follower until an election
    timeout trips the :class:`NotInConfiguration` path.

    ``config_version`` is the governing version the prober restored."""

    site: str
    config_version: int
    term: int


@dataclass(frozen=True, slots=True)
class RecoveryProbeReply:
    """A peer's answer to a :class:`RecoveryProbe`: its own governing
    config epoch, the membership verdict for the prober, and a leader
    hint. A strictly newer configuration that excludes the prober routes
    it straight onto the ``NotInConfiguration`` -> ``JoinRequest`` rejoin
    path; a confirming reply lets it resume as a follower immediately."""

    term: int
    config_version: int
    members: tuple[str, ...]
    leader_hint: str | None
    is_member: bool
    _wire_size: int | None = _wire_memo()

    def payload_size(self) -> int:
        """Fixed header plus the carried member list: like the other
        membership carriers, replies are charged by content (the probe
        fan-out is one reply per probed member)."""
        cached = self._wire_size
        if cached is None:
            cached = (HEADER_SIZE + 3 * SCALAR_SIZE
                      + sum(len(m) for m in self.members)
                      + (len(self.leader_hint) if self.leader_hint else 0))
            object.__setattr__(self, "_wire_size", cached)
        return cached


# ----------------------------------------------------------------------
# C-Raft envelope
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Envelope:
    """Level-tagged wrapper for C-Raft message routing.

    ``level`` is ``"local"`` or ``"global"``; ``scope`` is the cluster
    name for local messages (so a site in several clusters could route by
    cluster) and ``"global"`` otherwise.
    """

    level: str
    scope: str
    inner: Any
    _wire_size: int | None = _wire_memo()

    def payload_size(self) -> int:
        """Routing tag plus the wrapped message's own wire size (so a
        global snapshot chunk costs the same enveloped or bare).
        Memoized like the inner message: global broadcasts re-send one
        envelope to every cluster leader."""
        cached = self._wire_size
        if cached is None:
            cached = (len(self.level) + len(self.scope) + SCALAR_SIZE
                      + _payload_size(self.inner))
            object.__setattr__(self, "_wire_size", cached)
        return cached


#: Message types a non-member may send without being ignored.
MEMBERSHIP_OPEN_TYPES = (JoinRequest, LeaveRequest, RecoveryProbe)


@dataclass(slots=True)
class PendingClient:
    """Server-side bookkeeping for one in-flight client request."""

    request_id: str
    client: str
    entry: LogEntry
    attempt_index: int = 0
    replied: bool = False
    extra: dict[str, Any] = field(default_factory=dict)
