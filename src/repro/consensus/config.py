"""Membership configurations and bulk-transfer tuning.

A :class:`Configuration` is the set of voting members plus derived quorum
sizes. Per the paper, each site obeys the configuration from the **last
inserted** CONFIG entry in its log (insertion, not commit, is what
activates it), and only one site may join or leave per configuration
change.

Beyond the paper, a configuration may carry **non-voting observers**:
standing replicas that receive AppendEntries (and proposals) like any
member but never count toward commit quorums. Observers exist to fix the
two-member liveness hole: with exactly two voters, losing one makes every
classic quorum (2-of-2) unreachable, so the dead voter's exclusion can
never commit and the configuration wedges. When the voting set is that
small (``<= 2``), an observer is *promoted to a tiebreaker voter* -- but
only for deciding CONFIG entries and for leader elections, never for
ordinary log commits. Every promoted quorum is a strict majority of
``members + observers``, and any two quorums drawn under any mix of the
normal and promoted rules intersect (see the quorum property tests), so
two conflicting configurations can never both commit.

:class:`TransferConfig` tunes how engines ship bulk state (snapshots):
monolithic single-message InstallSnapshot, or Raft's chunked
``offset``/``done`` transfer with a bounded window of chunks in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import perf
from repro.consensus.quorum import classic_quorum_size, fast_quorum_size
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TransferConfig:
    """How an engine ships snapshots to lagging followers.

    With ``chunk_size`` unset the whole image travels as one
    ``InstallSnapshotRequest`` -- fine under a size-blind latency model,
    but one giant serialization charge under a
    :class:`~repro.net.latency.BandwidthLatencyModel`, and a transfer
    that restarts from zero on any loss. With ``chunk_size`` set the
    image is split into byte chunks, up to ``chunk_window`` of which are
    in flight (unacked) at once, so chunk serialization overlaps the
    acks crossing the wire and loss costs one chunk, not the image.
    """

    #: Chunk payload bytes; None ships the snapshot as one message.
    chunk_size: int | None = None
    #: Max unacked chunks in flight per follower (pipelining depth).
    chunk_window: int = 4
    #: Seconds without transfer progress before the leader resends
    #: unacked chunks; None falls back to the engine's proposal timeout.
    retry_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1: {self.chunk_size!r}")
        if self.chunk_window < 1:
            raise ConfigurationError(
                f"chunk_window must be >= 1: {self.chunk_window!r}")
        if self.retry_timeout is not None and self.retry_timeout <= 0:
            raise ConfigurationError(
                f"retry_timeout must be positive: {self.retry_timeout!r}")

    @property
    def chunked(self) -> bool:
        return self.chunk_size is not None


@dataclass(frozen=True)
class Configuration:
    """Immutable voting-member set (plus non-voting observers) with
    quorum sizes. Only ``members`` vote; ``observers`` replicate the log
    and are promoted to tiebreaker voters for CONFIG entries and
    elections while the voting set is degenerate (``size <= 2``)."""

    members: tuple[str, ...] = field(default=())
    observers: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        ordered = tuple(sorted(set(self.members)))
        if not ordered:
            raise ConfigurationError("configuration must have >= 1 member")
        if len(ordered) != len(self.members):
            raise ConfigurationError(
                f"duplicate members in configuration: {self.members!r}")
        object.__setattr__(self, "members", ordered)
        watchers = tuple(sorted(set(self.observers)))
        if len(watchers) != len(self.observers):
            raise ConfigurationError(
                f"duplicate observers in configuration: {self.observers!r}")
        overlap = set(watchers) & set(ordered)
        if overlap:
            raise ConfigurationError(
                f"sites cannot be both member and observer: {sorted(overlap)}")
        object.__setattr__(self, "observers", watchers)

    # ------------------------------------------------------------------
    # Quorums
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def classic_quorum(self) -> int:
        return classic_quorum_size(self.size)

    @property
    def fast_quorum(self) -> int:
        return fast_quorum_size(self.size)

    def is_classic_quorum(self, voters: set[str] | int) -> bool:
        count = voters if isinstance(voters, int) else len(
            set(voters) & set(self.members))
        return count >= self.classic_quorum

    def is_fast_quorum(self, voters: set[str] | int) -> bool:
        count = voters if isinstance(voters, int) else len(
            set(voters) & set(self.members))
        return count >= self.fast_quorum

    # ------------------------------------------------------------------
    # Tiebreaker promotion (observers, degenerate voting sets)
    # ------------------------------------------------------------------
    @property
    def tiebreaker_active(self) -> bool:
        """An observer acts as tiebreaker voter only while the voting
        set is too small to survive a single failure (``size <= 2``)."""
        return bool(self.observers) and self.size <= 2

    @property
    def tiebreaker(self) -> str | None:
        """The single promoted observer, if the promotion is active.

        Exactly one observer is ever promoted (the first by site id):
        the pairwise-intersection argument below needs the electorate to
        exceed the member set by at most one observer and one joiner, or
        member-free majorities of a large expanded electorate could miss
        a classic quorum entirely.
        """
        return self.observers[0] if self.tiebreaker_active else None

    def is_election_quorum(self, voters: set[str]) -> bool:
        """Vote-count rule for winning an election: the normal classic
        quorum, or -- with the tiebreaker active -- a strict majority of
        ``members + the tiebreaker``. For degenerate voting sets every
        classic quorum is the full member set, so any two quorums drawn
        under any mix of these rules intersect; with one vote per site
        per term that still yields at most one leader per term."""
        if self.is_classic_quorum(voters):
            return True
        if not self.tiebreaker_active:
            return False
        electorate = set(self.members) | {self.tiebreaker}
        count = len(set(voters) & electorate)
        return count >= classic_quorum_size(len(electorate))

    def config_entry_quorum(self, voters: set[str],
                            extra: set[str] | frozenset = frozenset()) -> bool:
        """Vote-count rule for *deciding a CONFIG entry*: the normal
        classic quorum, or a strict majority of the expanded electorate
        -- members, plus the tiebreaker (when active), plus at most one
        ``extra`` eligible joiner (a caught-up joining site replacing
        the member being excluded; one seat, one replacement, matching
        the single-site-change discipline). An expanded quorum must
        contain at least one member -- observers and joiners alone never
        decide a configuration. Ordinary entries never use this."""
        voter_set = set(voters)
        if self.is_classic_quorum(voter_set):
            return True
        if not voter_set & set(self.members):
            return False
        electorate = set(self.members)
        if self.tiebreaker_active:
            electorate.add(self.tiebreaker)
        joiner = sorted(set(extra) - electorate)[:1]
        electorate.update(joiner)
        if electorate == set(self.members):
            return False  # nothing to promote; the normal rule stands
        count = len(voter_set & electorate)
        return count >= classic_quorum_size(len(electorate))

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self.members

    def others(self, name: str) -> tuple[str, ...]:
        """All members except ``name``."""
        return tuple(m for m in self.members if m != name)

    @property
    def replicas(self) -> tuple[str, ...]:
        """Every site replicating this configuration's log: voting
        members plus non-voting observers. The single answer to "who
        gets AppendEntries / proposals / vote requests" -- engines must
        not re-derive the union themselves.

        Computed once per (immutable) configuration: proposal broadcasts
        and heartbeat fan-outs read this on every round, and the sorted
        union was being rebuilt for each (the legacy core still does,
        so bench_perf prices the memo)."""
        if perf.LEGACY_CORE:
            return tuple(sorted(set(self.members) | set(self.observers)))
        cached = self.__dict__.get("_replicas")
        if cached is None:
            cached = tuple(sorted(set(self.members) | set(self.observers)))
            object.__setattr__(self, "_replicas", cached)
        return cached

    def replicas_without(self, name: str) -> tuple[str, ...]:
        """All replicas except ``name``."""
        return tuple(r for r in self.replicas if r != name)

    def with_member(self, name: str) -> "Configuration":
        """Configuration after ``name`` joins (single-site change). An
        observer joining the voting set is *promoted* -- it leaves the
        observer list as it enters the member list."""
        if name in self.members:
            raise ConfigurationError(f"{name!r} is already a member")
        return Configuration(
            self.members + (name,),
            tuple(o for o in self.observers if o != name))

    def without_member(self, name: str) -> "Configuration":
        """Configuration after ``name`` leaves (single-site change)."""
        if name not in self.members:
            raise ConfigurationError(f"{name!r} is not a member")
        if self.size == 1:
            raise ConfigurationError("cannot remove the last member")
        return Configuration(tuple(m for m in self.members if m != name),
                             self.observers)

    def with_demoted(self, name: str) -> "Configuration":
        """Configuration after voting member ``name`` steps down to a
        standing non-voting observer (the bootstrap-seed retirement)."""
        if name not in self.members:
            raise ConfigurationError(f"{name!r} is not a member")
        if self.size == 1:
            raise ConfigurationError("cannot demote the last member")
        return Configuration(tuple(m for m in self.members if m != name),
                             self.observers + (name,))

    def single_change_from(self, other: "Configuration") -> bool:
        """True if this config differs from ``other`` by at most one site
        (the paper's safety precondition for reconfiguration). Observers
        do not count: they hold no votes, so moving one in or out of the
        observer list never changes any quorum."""
        mine, theirs = set(self.members), set(other.members)
        return len(mine.symmetric_difference(theirs)) <= 1

    def __repr__(self) -> str:
        if self.observers:
            return (f"Configuration({list(self.members)!r}, "
                    f"observers={list(self.observers)!r})")
        return f"Configuration({list(self.members)!r})"
