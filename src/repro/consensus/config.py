"""Membership configurations.

A configuration is the set of voting members plus derived quorum sizes.
Per the paper, each site obeys the configuration from the **last inserted**
CONFIG entry in its log (insertion, not commit, is what activates it), and
only one site may join or leave per configuration change.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.consensus.quorum import classic_quorum_size, fast_quorum_size
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Configuration:
    """Immutable voting-member set with quorum sizes."""

    members: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        ordered = tuple(sorted(set(self.members)))
        if not ordered:
            raise ConfigurationError("configuration must have >= 1 member")
        if len(ordered) != len(self.members):
            raise ConfigurationError(
                f"duplicate members in configuration: {self.members!r}")
        object.__setattr__(self, "members", ordered)

    # ------------------------------------------------------------------
    # Quorums
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def classic_quorum(self) -> int:
        return classic_quorum_size(self.size)

    @property
    def fast_quorum(self) -> int:
        return fast_quorum_size(self.size)

    def is_classic_quorum(self, voters: set[str] | int) -> bool:
        count = voters if isinstance(voters, int) else len(
            set(voters) & set(self.members))
        return count >= self.classic_quorum

    def is_fast_quorum(self, voters: set[str] | int) -> bool:
        count = voters if isinstance(voters, int) else len(
            set(voters) & set(self.members))
        return count >= self.fast_quorum

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self.members

    def others(self, name: str) -> tuple[str, ...]:
        """All members except ``name``."""
        return tuple(m for m in self.members if m != name)

    def with_member(self, name: str) -> "Configuration":
        """Configuration after ``name`` joins (single-site change)."""
        if name in self.members:
            raise ConfigurationError(f"{name!r} is already a member")
        return Configuration(self.members + (name,))

    def without_member(self, name: str) -> "Configuration":
        """Configuration after ``name`` leaves (single-site change)."""
        if name not in self.members:
            raise ConfigurationError(f"{name!r} is not a member")
        if self.size == 1:
            raise ConfigurationError("cannot remove the last member")
        return Configuration(tuple(m for m in self.members if m != name))

    def single_change_from(self, other: "Configuration") -> bool:
        """True if this config differs from ``other`` by at most one site
        (the paper's safety precondition for reconfiguration)."""
        mine, theirs = set(self.members), set(other.members)
        return len(mine.symmetric_difference(theirs)) <= 1

    def __repr__(self) -> str:
        return f"Configuration({list(self.members)!r})"
