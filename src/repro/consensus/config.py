"""Membership configurations and bulk-transfer tuning.

A :class:`Configuration` is the set of voting members plus derived quorum
sizes. Per the paper, each site obeys the configuration from the **last
inserted** CONFIG entry in its log (insertion, not commit, is what
activates it), and only one site may join or leave per configuration
change.

:class:`TransferConfig` tunes how engines ship bulk state (snapshots):
monolithic single-message InstallSnapshot, or Raft's chunked
``offset``/``done`` transfer with a bounded window of chunks in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.consensus.quorum import classic_quorum_size, fast_quorum_size
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TransferConfig:
    """How an engine ships snapshots to lagging followers.

    With ``chunk_size`` unset the whole image travels as one
    ``InstallSnapshotRequest`` -- fine under a size-blind latency model,
    but one giant serialization charge under a
    :class:`~repro.net.latency.BandwidthLatencyModel`, and a transfer
    that restarts from zero on any loss. With ``chunk_size`` set the
    image is split into byte chunks, up to ``chunk_window`` of which are
    in flight (unacked) at once, so chunk serialization overlaps the
    acks crossing the wire and loss costs one chunk, not the image.
    """

    #: Chunk payload bytes; None ships the snapshot as one message.
    chunk_size: int | None = None
    #: Max unacked chunks in flight per follower (pipelining depth).
    chunk_window: int = 4
    #: Seconds without transfer progress before the leader resends
    #: unacked chunks; None falls back to the engine's proposal timeout.
    retry_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1: {self.chunk_size!r}")
        if self.chunk_window < 1:
            raise ConfigurationError(
                f"chunk_window must be >= 1: {self.chunk_window!r}")
        if self.retry_timeout is not None and self.retry_timeout <= 0:
            raise ConfigurationError(
                f"retry_timeout must be positive: {self.retry_timeout!r}")

    @property
    def chunked(self) -> bool:
        return self.chunk_size is not None


@dataclass(frozen=True)
class Configuration:
    """Immutable voting-member set with quorum sizes."""

    members: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        ordered = tuple(sorted(set(self.members)))
        if not ordered:
            raise ConfigurationError("configuration must have >= 1 member")
        if len(ordered) != len(self.members):
            raise ConfigurationError(
                f"duplicate members in configuration: {self.members!r}")
        object.__setattr__(self, "members", ordered)

    # ------------------------------------------------------------------
    # Quorums
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def classic_quorum(self) -> int:
        return classic_quorum_size(self.size)

    @property
    def fast_quorum(self) -> int:
        return fast_quorum_size(self.size)

    def is_classic_quorum(self, voters: set[str] | int) -> bool:
        count = voters if isinstance(voters, int) else len(
            set(voters) & set(self.members))
        return count >= self.classic_quorum

    def is_fast_quorum(self, voters: set[str] | int) -> bool:
        count = voters if isinstance(voters, int) else len(
            set(voters) & set(self.members))
        return count >= self.fast_quorum

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self.members

    def others(self, name: str) -> tuple[str, ...]:
        """All members except ``name``."""
        return tuple(m for m in self.members if m != name)

    def with_member(self, name: str) -> "Configuration":
        """Configuration after ``name`` joins (single-site change)."""
        if name in self.members:
            raise ConfigurationError(f"{name!r} is already a member")
        return Configuration(self.members + (name,))

    def without_member(self, name: str) -> "Configuration":
        """Configuration after ``name`` leaves (single-site change)."""
        if name not in self.members:
            raise ConfigurationError(f"{name!r} is not a member")
        if self.size == 1:
            raise ConfigurationError("cannot remove the last member")
        return Configuration(tuple(m for m in self.members if m != name))

    def single_change_from(self, other: "Configuration") -> bool:
        """True if this config differs from ``other`` by at most one site
        (the paper's safety precondition for reconfiguration)."""
        mine, theirs = set(self.members), set(other.members)
        return len(mine.symmetric_difference(theirs)) <= 1

    def __repr__(self) -> str:
        return f"Configuration({list(self.members)!r})"
