"""The replicated log.

Indices start at 1 (index 0 is the empty-log sentinel with term 0, as in
the Raft papers). Unlike classic Raft's append-only list, Fast Raft inserts
entries at arbitrary indices -- "site a may miss a proposal for an entry at
index j < i ... leaving index j empty" -- and overwrites entries when the
leader approves a different one. The log is therefore a sparse map with
explicit support for holes, overwrite, and (for the classic baseline)
suffix truncation.

An ``entry_id -> indices`` reverse map supports duplicate detection
("If entry is duplicate and committed, notify proposer").

Compaction: a committed prefix can be dropped wholesale once a snapshot
covers it (:meth:`RaftLog.compact_to` / :meth:`RaftLog.install_snapshot`).
The log then remembers only the compaction point's ``(index, term)`` --
the anchor AppendEntries consistency checks still need -- and refuses any
access below it. Sparse-slot/hole semantics are untouched above the
compaction point.
"""

from __future__ import annotations

from typing import Iterator

from repro import perf
from repro.consensus.entry import EntryKind, InsertedBy, LogEntry
from repro.errors import LogError


class RaftLog:
    """Sparse 1-indexed log with provenance-aware slots."""

    def __init__(self) -> None:
        self._slots: dict[int, LogEntry] = {}
        self._last_index = 0
        self._id_indices: dict[str, set[int]] = {}
        # Indices currently holding CONFIG entries, maintained on every
        # insert/remove. The governing-config lookup runs on *every*
        # AppendEntries absorb, and a full index-ordered log scan there
        # was the single hottest line of the whole simulation (O(log
        # length) per message, quadratic over a run); tracking the
        # handful of CONFIG indices makes it O(#configs).
        self._config_indices: set[int] = set()
        # Compaction point: every index at or below it has been dropped
        # and is covered by a snapshot. (0, 0) doubles as the classic
        # index-0 sentinel of an uncompacted log.
        self._snapshot_index = 0
        self._snapshot_term = 0

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def last_index(self) -> int:
        """Highest occupied index (``lastLogIndex``), or the compaction
        point when nothing is retained above it; 0 when empty."""
        return self._last_index

    @property
    def snapshot_index(self) -> int:
        """Compaction point: highest index dropped into a snapshot."""
        return self._snapshot_index

    @property
    def snapshot_term(self) -> int:
        """Term of the entry at the compaction point (0 if uncompacted)."""
        return self._snapshot_term

    @property
    def first_retained_index(self) -> int:
        """Lowest index this log can still hold an entry for."""
        return self._snapshot_index + 1

    def get(self, index: int) -> LogEntry | None:
        """Entry at ``index`` or None (hole / out of range)."""
        return self._slots.get(index)

    def has(self, index: int) -> bool:
        return index in self._slots

    def term_at(self, index: int) -> int:
        """Term of the entry at ``index``; the snapshot term at the
        compaction point (which is the index-0 sentinel term 0 when the
        log was never compacted).

        Raises :class:`LogError` for a hole or a compacted index, because
        callers comparing terms there are making a protocol error.
        """
        if index == self._snapshot_index:
            return self._snapshot_term
        if index < self._snapshot_index:
            raise LogError(f"index {index} compacted "
                           f"(snapshot at {self._snapshot_index})")
        entry = self._slots.get(index)
        if entry is None:
            raise LogError(f"no entry at index {index}")
        return entry.term

    def __len__(self) -> int:
        """Number of occupied slots (holes excluded)."""
        return len(self._slots)

    def __iter__(self) -> Iterator[tuple[int, LogEntry]]:
        """Iterate occupied ``(index, entry)`` pairs in index order."""
        for index in sorted(self._slots):
            yield index, self._slots[index]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, index: int, entry: LogEntry) -> None:
        """Place ``entry`` at ``index``, overwriting any occupant.

        Fast Raft semantics: followers insert proposals into empty slots
        and the leader's AppendEntries overwrites conflicting ones. The
        caller decides *whether* overwriting is legal; the log only
        records.
        """
        if index < 1:
            raise LogError(f"log indices start at 1: {index!r}")
        if index <= self._snapshot_index:
            raise LogError(f"cannot insert at compacted index {index} "
                           f"(snapshot at {self._snapshot_index})")
        old = self._slots.get(index)
        if old is not None:
            self._unindex(old.entry_id, index)
            if old.kind is EntryKind.CONFIG:
                self._config_indices.discard(index)
        self._slots[index] = entry
        self._index_id(entry.entry_id, index)
        if entry.kind is EntryKind.CONFIG:
            self._config_indices.add(index)
        if index > self._last_index:
            self._last_index = index

    def append(self, entry: LogEntry) -> int:
        """Classic-Raft append at ``last_index + 1``; returns the index."""
        index = self._last_index + 1
        self.insert(index, entry)
        return index

    def truncate_from(self, index: int) -> None:
        """Remove every entry at ``index`` and above (classic-Raft conflict
        resolution; Fast Raft never truncates, it overwrites)."""
        if index < 1:
            raise LogError(f"cannot truncate from index {index!r}")
        if index <= self._snapshot_index:
            raise LogError(f"cannot truncate compacted prefix at {index} "
                           f"(snapshot at {self._snapshot_index})")
        doomed = [i for i in self._slots if i >= index]
        for i in doomed:
            self._unindex(self._slots[i].entry_id, i)
            self._config_indices.discard(i)
            del self._slots[i]
        self._last_index = max(self._slots, default=self._snapshot_index)

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact_to(self, index: int) -> int:
        """Drop every entry at or below ``index`` (the caller guarantees
        they are committed and captured by a snapshot). The compaction
        point's term is taken from the occupant, which therefore must
        exist. Returns the number of entries dropped."""
        if index <= self._snapshot_index:
            return 0
        return self.install_snapshot(index, self.term_at(index))

    def install_snapshot(self, index: int, term: int) -> int:
        """Adopt an external snapshot anchor at ``(index, term)``: drop
        everything at or below ``index`` and keep any suffix above it
        (conflicting suffix entries are resolved by later replication,
        exactly like a retained tail after local compaction). Returns the
        number of entries dropped."""
        if index <= self._snapshot_index:
            return 0
        doomed = [i for i in self._slots if i <= index]
        for i in doomed:
            self._unindex(self._slots[i].entry_id, i)
            self._config_indices.discard(i)
            del self._slots[i]
        self._snapshot_index = index
        self._snapshot_term = term
        self._last_index = max(self._last_index, index)
        return len(doomed)

    # ------------------------------------------------------------------
    # Range and provenance queries
    # ------------------------------------------------------------------
    def entries_between(self, lo: int, hi: int) -> list[tuple[int, LogEntry]]:
        """Occupied ``(index, entry)`` pairs with ``lo <= index <= hi``
        (compacted indices excluded -- they hold no entries)."""
        lo = max(lo, self.first_retained_index)
        return [(i, self._slots[i]) for i in range(lo, hi + 1)
                if i in self._slots]

    def contiguous_from(self, lo: int, hi: int) -> bool:
        """True when every index in ``[lo, hi]`` is occupied (compacted
        indices count as held: their entries are in the snapshot)."""
        return all(i in self._slots or i <= self._snapshot_index
                   for i in range(lo, hi + 1))

    def last_with_provenance(self, inserted_by: InsertedBy) -> int:
        """Highest index whose entry has the given provenance, else 0.

        ``last_with_provenance(InsertedBy.LEADER)`` is the paper's
        ``lastLeaderIndex``.
        """
        for index in sorted(self._slots, reverse=True):
            if self._slots[index].inserted_by is inserted_by:
                return index
        return 0

    def entries_with_provenance(self, inserted_by: InsertedBy
                                ) -> list[tuple[int, LogEntry]]:
        """All ``(index, entry)`` pairs with the given provenance, ordered."""
        return [(i, e) for i, e in self if e.inserted_by is inserted_by]

    def latest_config_entry(self) -> tuple[int, LogEntry] | None:
        """Highest-index CONFIG entry, or None (bootstrap config applies)."""
        if not self._config_indices:
            return None
        index = max(self._config_indices)
        return index, self._slots[index]

    def best_config_entry(self, upto: int | None = None,
                          decided_upto: int | None = None
                          ) -> tuple[int, LogEntry] | None:
        """The governing CONFIG entry: highest version, then highest
        index (see ConfigPayload.version). ``upto`` restricts the scan to
        indices at or below it (e.g. the committed prefix).

        ``decided_upto`` (the caller's commit index) excludes *tentative*
        CONFIG entries: self-approved ones above it. A proposed-but-
        undecided configuration must not govern -- otherwise a 2-voter
        leader proposing its dead peer's exclusion would activate the
        shrunk config from its own proposal insert and decide the entry
        as a 1-of-1 quorum, bypassing the degraded-reconfiguration guard
        (split-brain under partition once the other side can elect via
        the observer tiebreaker). Leader-approved entries govern from
        insert, which is what the paper's Section IV-F degraded chain
        relies on; committed ones govern regardless of provenance.

        This runs per absorbed AppendEntries, so the scan covers only
        the tracked CONFIG indices (the pre-refactor full-log walk stays
        behind the legacy-core switch as the reference implementation)."""
        if perf.LEGACY_CORE:
            candidates = (pair for pair in self
                          if pair[1].kind is EntryKind.CONFIG)
        else:
            candidates = ((index, self._slots[index])
                          for index in sorted(self._config_indices))
        best: tuple[int, LogEntry] | None = None
        for index, entry in candidates:
            if upto is not None and index > upto:
                break  # iteration is index-ordered
            if (decided_upto is not None and index > decided_upto
                    and entry.inserted_by is not InsertedBy.LEADER):
                continue  # tentative proposal: not yet governing
            if best is None:
                best = (index, entry)
                continue
            best_key = (getattr(best[1].payload, "version", 0), best[0])
            this_key = (getattr(entry.payload, "version", 0), index)
            if this_key > best_key:
                best = (index, entry)
        return best

    def max_config_version(self) -> int:
        """Highest configuration version anywhere in the log (0 if none)."""
        return max((getattr(self._slots[i].payload, "version", 0)
                    for i in self._config_indices),
                   default=0)

    # ------------------------------------------------------------------
    # Duplicate detection
    # ------------------------------------------------------------------
    def indices_of(self, entry_id: str) -> set[int]:
        """All indices currently holding ``entry_id`` (possibly several,
        after client retries landed the same request at multiple slots)."""
        return set(self._id_indices.get(entry_id, ()))

    def committed_index_of(self, entry_id: str, commit_index: int
                           ) -> int | None:
        """Lowest committed index holding ``entry_id``, or None."""
        indices = self._id_indices.get(entry_id)
        if not indices:
            return None
        if perf.LEGACY_CORE:
            committed = [i for i in indices if i <= commit_index]
            return min(committed) if committed else None
        best = None
        for i in indices:  # no list build: runs per proposal delivery
            if i <= commit_index and (best is None or i < best):
                best = i
        return best

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _index_id(self, entry_id: str, index: int) -> None:
        self._id_indices.setdefault(entry_id, set()).add(index)

    def _unindex(self, entry_id: str, index: int) -> None:
        indices = self._id_indices.get(entry_id)
        if indices is not None:
            indices.discard(index)
            if not indices:
                del self._id_indices[entry_id]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<RaftLog last_index={self._last_index} "
                f"occupied={len(self._slots)} "
                f"snapshot={self._snapshot_index}>")
