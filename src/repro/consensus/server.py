"""ConsensusServer: binds a protocol engine to a network address.

The server owns everything that is *not* consensus: client bookkeeping
(request -> client, exactly-once replies), state-machine application of
committed DATA entries, and crash/recovery (rebuilding the engine from
stable storage with fresh volatile state).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.consensus.config import Configuration, TransferConfig
from repro.consensus.engine import BaseEngine, EngineContext
from repro.consensus.entry import EntryKind, LogEntry
from repro.consensus.messages import ClientReply, ClientRequest
from repro.consensus.timing import TimingConfig
from repro.net.network import Network
from repro.sim.actor import Actor
from repro.sim.loop import SimLoop
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder
from repro.snapshot import CompactionPolicy, Snapshot, SnapshotImage
from repro.storage.stable import StableStore


class ConsensusServer(Actor):
    """A site: one engine, its clients, and its state machine."""

    #: Subclasses bind the engine class.
    engine_cls: type[BaseEngine] = BaseEngine

    def __init__(self, name: str, loop: SimLoop, network: Network,
                 store: StableStore, bootstrap_config: Configuration,
                 timing: TimingConfig, rng: RngRegistry,
                 trace: TraceRecorder,
                 state_machine_factory: Callable[[], Any] | None = None,
                 compaction: CompactionPolicy | None = None,
                 transfer: TransferConfig | None = None
                 ) -> None:
        super().__init__(loop, name)
        self._network = network
        self._store = store
        self._bootstrap_config = bootstrap_config
        self._timing = timing
        self._rng = rng
        self._trace = trace
        self._sm_factory = state_machine_factory
        self._compaction = compaction
        self._transfer = transfer if transfer is not None else TransferConfig()
        self.state_machine = state_machine_factory() if state_machine_factory else None
        # request_id -> client address; replies are exactly-once per id.
        self._clients: dict[str, str] = {}
        self._replied: set[str] = set()
        self._applied_ids: set[str] = set()
        #: Committed (index, entry) pairs in apply order (tests/checkers).
        self.applied_log: list[tuple[int, LogEntry]] = []
        #: Index the machine was last restored to from a snapshot (0 if
        #: never): applies must resume exactly one above it (checkers).
        self.applied_floor = 0
        self.engine = self._build_engine()

    # ------------------------------------------------------------------
    # Engine wiring
    # ------------------------------------------------------------------
    def _build_engine(self) -> BaseEngine:
        ctx = EngineContext(
            name=self.name, loop=self.loop, send=self._send,
            rng=self._rng.stream(f"node.{self.name}"), trace=self._trace,
            store=self._store, timing=self._timing,
            on_apply=self._on_apply, on_origin_commit=self._on_origin_commit,
            capture_snapshot=self._capture_snapshot,
            on_snapshot_restore=self._restore_snapshot,
            compaction=self._compaction, transfer=self._transfer)
        return type(self).engine_cls(ctx, self._bootstrap_config)

    def _send(self, dst: str, message: Any) -> None:
        self._network.send(self.name, dst, message)

    def start(self) -> None:
        self.engine.start()

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Stop the site. Stable storage survives; volatile state dies."""
        self.engine.stop()
        self.kill()

    def recover(self) -> None:
        """Restart from stable storage with fresh volatile state."""
        self.state_machine = self._sm_factory() if self._sm_factory else None
        self._clients.clear()
        self._replied.clear()
        self._applied_ids.clear()
        self.applied_log = []
        self.applied_floor = 0
        self.engine = self._build_engine()
        self.revive()
        self.engine.start()
        # Probe-before-trust: the restored configuration may be older
        # than the member timeout (evicted while down).
        self.engine.begin_recovery_probe()
        self._trace.record(self.now(), self.name, "node.recovered")

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def _capture_snapshot(self) -> SnapshotImage:
        """The server's contribution to a snapshot at the current commit
        point: the machine image plus the exactly-once id set."""
        state = (self.state_machine.snapshot()
                 if self.state_machine is not None else None)
        return SnapshotImage(machine_state=state,
                             applied_ids=tuple(sorted(self._applied_ids)))

    def _restore_snapshot(self, snapshot: Snapshot) -> None:
        """Adopt a snapshot image in place of (re)playing the compacted
        prefix: rebuild the machine from the image and resume the applied
        bookkeeping at the snapshot point."""
        if self._sm_factory is not None:
            self.state_machine = self._sm_factory()
            if snapshot.machine_state is not None:
                self.state_machine.restore(snapshot.machine_state)
        self._applied_ids = set(snapshot.applied_ids)
        self.applied_log = []
        self.applied_floor = snapshot.last_included_index
        self._trace.record(self.now(), self.name, "node.snapshot_restored",
                           index=snapshot.last_included_index)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def on_message(self, message: Any, sender: str) -> None:
        # ClientRequest is a final class: the exact-type test matches the
        # isinstance check and skips its subclass walk on every delivery.
        if type(message) is ClientRequest:
            self._clients[message.request_id] = sender
        self.engine.handle(message, sender)

    # ------------------------------------------------------------------
    # Commit callbacks
    # ------------------------------------------------------------------
    def _on_apply(self, index: int, entry: LogEntry) -> None:
        self.applied_log.append((index, entry))
        if entry.kind is not EntryKind.DATA:
            return
        if entry.entry_id in self._applied_ids:
            return  # exactly-once: a retried request committed twice
        self._applied_ids.add(entry.entry_id)
        if self.state_machine is not None:
            self.state_machine.apply(entry.payload)

    def _on_origin_commit(self, entry: LogEntry, index: int) -> None:
        request_id = entry.entry_id
        client = self._clients.get(request_id)
        if client is None or request_id in self._replied:
            return
        self._replied.add(request_id)
        self._network.send_local(self.name, client, ClientReply(
            request_id=request_id, ok=True, index=index))
