"""ConsensusServer: binds a protocol engine to a network address.

The server owns everything that is *not* consensus: client bookkeeping
(request -> client, exactly-once replies), session dedup for retried
requests, lease-based local reads, optional proposal coalescing on the
leader, state-machine application of committed DATA entries, and
crash/recovery (rebuilding the engine from stable storage with fresh
volatile state).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.consensus.config import Configuration, TransferConfig
from repro.consensus.engine import BaseEngine, EngineContext, Role
from repro.consensus.entry import EntryKind, LogEntry
from repro.consensus.messages import (ClientReply, ClientRequest, ReadReply,
                                      ReadRequest)
from repro.consensus.timing import TimingConfig
from repro.net.network import Network
from repro.sim.actor import Actor
from repro.sim.loop import SimLoop
from repro.sim.rng import RngRegistry
from repro.sim.timers import RestartableTimer
from repro.sim.trace import TraceRecorder
from repro.smr.sessions import SessionTable
from repro.snapshot import CompactionPolicy, Snapshot, SnapshotImage
from repro.storage.stable import StableStore

if TYPE_CHECKING:  # craft imports this module's engines: runtime-lazy
    from repro.craft.batching import BatchPolicy, ProposalCoalescer


def _make_coalescer(policy: "BatchPolicy") -> "ProposalCoalescer":
    from repro.craft.batching import ProposalCoalescer
    return ProposalCoalescer(policy)


class ConsensusServer(Actor):
    """A site: one engine, its clients, and its state machine."""

    #: Subclasses bind the engine class.
    engine_cls: type[BaseEngine] = BaseEngine

    def __init__(self, name: str, loop: SimLoop, network: Network,
                 store: StableStore, bootstrap_config: Configuration,
                 timing: TimingConfig, rng: RngRegistry,
                 trace: TraceRecorder,
                 state_machine_factory: Callable[[], Any] | None = None,
                 compaction: CompactionPolicy | None = None,
                 transfer: TransferConfig | None = None,
                 propose_batch: BatchPolicy | None = None
                 ) -> None:
        super().__init__(loop, name)
        self._network = network
        self._store = store
        self._bootstrap_config = bootstrap_config
        self._timing = timing
        self._rng = rng
        self._trace = trace
        self._sm_factory = state_machine_factory
        self._compaction = compaction
        self._transfer = transfer if transfer is not None else TransferConfig()
        self.state_machine = state_machine_factory() if state_machine_factory else None
        # request_id -> client address; replies are exactly-once per id.
        self._clients: dict[str, str] = {}
        self._replied: set[str] = set()
        self._applied_ids: set[str] = set()
        #: Committed (index, entry) pairs in apply order (tests/checkers).
        self.applied_log: list[tuple[int, LogEntry]] = []
        #: Index the machine was last restored to from a snapshot (0 if
        #: never): applies must resume exactly one above it (checkers).
        self.applied_floor = 0
        # Session dedup: off until a session client attaches (the flag is
        # sticky across crashes -- session state itself is volatile and
        # rebuilt from the snapshot + replay, but whether to track is a
        # deployment property, not runtime state).
        self._session_tracking = False
        self._sessions = SessionTable()
        #: Retried requests answered from the session table (metrics).
        self.session_duplicates = 0
        # Lease reads queued until a qualifying quorum-acked beat arrives.
        self._pending_reads: dict[str, tuple[ReadRequest, str, float]] = {}
        # Optional leader-side proposal coalescing (ClientRequest -> engine).
        self._propose_policy = propose_batch
        self._coalescer = (_make_coalescer(propose_batch)
                           if propose_batch is not None else None)
        self._coalesce_timer: RestartableTimer | None = None
        self._request_arrivals: dict[str, float] = {}
        self.engine = self._build_engine()

    # ------------------------------------------------------------------
    # Engine wiring
    # ------------------------------------------------------------------
    def _build_engine(self) -> BaseEngine:
        ctx = EngineContext(
            name=self.name, loop=self.loop, send=self._send,
            rng=self._rng.stream(f"node.{self.name}"), trace=self._trace,
            store=self._store, timing=self._timing,
            on_apply=self._on_apply, on_origin_commit=self._on_origin_commit,
            capture_snapshot=self._capture_snapshot,
            on_snapshot_restore=self._restore_snapshot,
            compaction=self._compaction, transfer=self._transfer)
        engine = type(self).engine_cls(ctx, self._bootstrap_config)
        engine.on_lease_beat = self._on_lease_beat
        return engine

    def _send(self, dst: str, message: Any) -> None:
        self._network.send(self.name, dst, message)

    def start(self) -> None:
        self.engine.start()

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Stop the site. Stable storage survives; volatile state dies."""
        if self._coalesce_timer is not None:
            self._coalesce_timer.cancel()
        self._pending_reads.clear()
        self.engine.stop()
        self.kill()

    def recover(self) -> None:
        """Restart from stable storage with fresh volatile state."""
        self.state_machine = self._sm_factory() if self._sm_factory else None
        self._clients.clear()
        self._replied.clear()
        self._applied_ids.clear()
        self.applied_log = []
        self.applied_floor = 0
        # Session state is volatile but fully derivable: the snapshot
        # restore and the commit replay below the restored commit point
        # repopulate it through _restore_snapshot/_on_apply.
        self._sessions = SessionTable()
        self._pending_reads.clear()
        self._request_arrivals.clear()
        if self._coalescer is not None:
            self._coalescer = _make_coalescer(self._propose_policy)
        if self._coalesce_timer is not None:
            self._coalesce_timer.cancel()
        self.engine = self._build_engine()
        self.revive()
        self.engine.start()
        # Probe-before-trust: the restored configuration may be older
        # than the member timeout (evicted while down).
        self.engine.begin_recovery_probe()
        self._trace.record(self.now(), self.name, "node.recovered")

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def _capture_snapshot(self) -> SnapshotImage:
        """The server's contribution to a snapshot at the current commit
        point: the machine image plus the exactly-once id set."""
        state = (self.state_machine.snapshot()
                 if self.state_machine is not None else None)
        return SnapshotImage(machine_state=state,
                             applied_ids=tuple(sorted(self._applied_ids)))

    def _restore_snapshot(self, snapshot: Snapshot) -> None:
        """Adopt a snapshot image in place of (re)playing the compacted
        prefix: rebuild the machine from the image and resume the applied
        bookkeeping at the snapshot point."""
        if self._sm_factory is not None:
            self.state_machine = self._sm_factory()
            if snapshot.machine_state is not None:
                self.state_machine.restore(snapshot.machine_state)
        self._applied_ids = set(snapshot.applied_ids)
        if self._session_tracking:
            # The session table is a compressed view of the applied-id
            # set, so it rides in every snapshot for free.
            self._sessions = SessionTable.from_applied_ids(
                snapshot.applied_ids)
        self.applied_log = []
        self.applied_floor = snapshot.last_included_index
        self._trace.record(self.now(), self.name, "node.snapshot_restored",
                           index=snapshot.last_included_index)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def on_message(self, message: Any, sender: str) -> None:
        # ClientRequest is a final class: the exact-type test matches the
        # isinstance check and skips its subclass walk on every delivery.
        if type(message) is ClientRequest:
            if (self._session_tracking and message.sequence
                    and self._sessions.is_duplicate(message.session_id,
                                                    message.sequence)):
                self._reply_duplicate(message, sender)
                return
            self._clients[message.request_id] = sender
            coalescer = self._coalescer
            if coalescer is not None and self.engine.role is Role.LEADER:
                now = self.now()
                self._request_arrivals[message.request_id] = now
                if coalescer.add(message.request_id, message, sender, now):
                    self._flush_proposals()
                else:
                    self._arm_coalesce_timer()
                return
        elif type(message) is ReadRequest:
            self._handle_read(message, sender)
            return
        self.engine.handle(message, sender)

    def _reply_duplicate(self, message: ClientRequest, sender: str) -> None:
        """A retry of an already-applied request: complete it without
        entering consensus at all (exactly-once over at-least-once)."""
        sequence, index = self._sessions.last_applied(message.session_id)
        self.session_duplicates += 1
        self._trace.record(self.now(), self.name, "session.duplicate",
                           request_id=message.request_id)
        self._network.send_local(self.name, sender, ClientReply(
            request_id=message.request_id, ok=True,
            index=index if sequence == message.sequence else None,
            info="duplicate"))

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def enable_session_tracking(self) -> None:
        """Turn on per-session dedup (idempotent; called when a session
        client attaches anywhere in the deployment). Default runs never
        pay for the table."""
        self._session_tracking = True

    @property
    def session_count(self) -> int:
        return len(self._sessions)

    # ------------------------------------------------------------------
    # Proposal coalescing (leader side)
    # ------------------------------------------------------------------
    def _flush_proposals(self) -> None:
        if self._coalesce_timer is not None:
            self._coalesce_timer.cancel()
        for message, sender in self._coalescer.drain():
            self.engine.handle(message, sender)

    def _arm_coalesce_timer(self) -> None:
        deadline = self._coalescer.age_deadline()
        if deadline is None:
            return
        if self._coalesce_timer is None:
            self._coalesce_timer = RestartableTimer(self.loop,
                                                    self._on_coalesce_timeout)
        self._coalesce_timer.reset(max(0.0, deadline - self.now()))

    def _on_coalesce_timeout(self) -> None:
        if self._coalescer.pending_count:
            self._flush_proposals()

    # ------------------------------------------------------------------
    # Lease reads
    # ------------------------------------------------------------------
    def _handle_read(self, message: ReadRequest, sender: str) -> None:
        engine = self.engine
        now = self.now()
        if engine.lease_valid(now):
            # Leaseholder: local state covers every acknowledged write.
            self._serve_read(message, sender, engine.commit_index)
            return
        if not engine.lease_enabled:
            self._network.send_local(self.name, sender, ReadReply(
                request_id=message.request_id, ok=False,
                info="leases_disabled"))
            return
        # Follower (or leaderless/expired): hold the read until a beat
        # sent after its arrival proves freshness. A retried read simply
        # re-arms its arrival time.
        self._pending_reads[message.request_id] = (message, sender, now)

    def _on_lease_beat(self, sent_at: float, leader_commit: int,
                       lease_until: float) -> None:
        """Engine hook: a lease-carrying AppendEntries was absorbed.

        A beat sent at ``sent_at`` proves the leader had committed (and
        this follower has now locally applied) everything acknowledged
        before ``sent_at`` -- so any read that arrived before the beat
        was *sent* linearizes at the beat's commit point.
        """
        if not self._pending_reads:
            return
        if lease_until <= self.now():
            return
        if self.engine.commit_index < leader_commit:
            return  # local apply not caught up yet; wait for the next beat
        ready = [request_id
                 for request_id, (_, _, arrived) in self._pending_reads.items()
                 if arrived < sent_at]
        for request_id in ready:
            message, sender, _ = self._pending_reads.pop(request_id)
            self._serve_read(message, sender, leader_commit)

    def _serve_read(self, message: ReadRequest, sender: str,
                    index: int) -> None:
        machine = self.state_machine
        getter = getattr(machine, "get", None)
        value = getter(message.key) if getter is not None else None
        self._trace.record(self.now(), self.name, "lease.read_served",
                           request_id=message.request_id, index=index)
        self._network.send_local(self.name, sender, ReadReply(
            request_id=message.request_id, ok=True, value=value, index=index))

    # ------------------------------------------------------------------
    # Commit callbacks
    # ------------------------------------------------------------------
    def _on_apply(self, index: int, entry: LogEntry) -> None:
        self.applied_log.append((index, entry))
        if entry.kind is not EntryKind.DATA:
            return
        if entry.entry_id in self._applied_ids:
            return  # exactly-once: a retried request committed twice
        self._applied_ids.add(entry.entry_id)
        if self._session_tracking:
            self._sessions.observe(entry.entry_id, index)
        if self.state_machine is not None:
            self.state_machine.apply(entry.payload)

    def _on_origin_commit(self, entry: LogEntry, index: int) -> None:
        request_id = entry.entry_id
        client = self._clients.get(request_id)
        if client is None or request_id in self._replied:
            return
        self._replied.add(request_id)
        if self._coalescer is not None:
            arrived = self._request_arrivals.pop(request_id, None)
            if arrived is not None:
                self._coalescer.observe_commit_latency(self.now() - arrived)
        self._network.send_local(self.name, client, ClientReply(
            request_id=request_id, ok=True, index=index))
