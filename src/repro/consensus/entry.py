"""Log entries.

A :class:`LogEntry` carries, per the paper's "Contents of a log entry":

- ``data`` -- here split into ``kind`` + ``payload`` so configuration
  entries, C-Raft global-state entries, batches, and no-ops are explicit,
- ``term`` -- the term in which the holding site inserted it,
- ``inserted_by`` -- ``SELF`` or ``LEADER`` (new in Fast Raft).

Entries also carry an ``entry_id`` (``"<origin>:<request id>"``) and the
``origin`` site. The id gives "the same entry" a precise meaning for vote
counting and duplicate suppression; the origin tells any leader (including
one elected after a failure) whom to notify on commit.

Entries are immutable; state changes (leader approval, restamping) create
a new object via :func:`dataclasses.replace`-style helpers, which keeps
log snapshots safe to share across the simulation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro import perf
from repro.net.sizes import estimate_size

#: Structural-size memo slot shared by the entry dataclasses: entries
#: are immutable, so :func:`repro.net.sizes.estimate_size` computes each
#: one's wire contribution once and stores it here (the field itself is
#: excluded from sizing, comparison, and repr). ``init=False`` keeps
#: constructor signatures and ``dataclasses.replace`` behaviour
#: unchanged -- a replaced copy starts with a fresh (empty) memo.
def _size_memo() -> Any:
    return field(default=None, init=False, repr=False, compare=False)


class EntryKind(enum.Enum):
    """What a log entry's payload means."""

    DATA = "data"                  # application command
    NOOP = "noop"                  # leader filler / term establishment
    CONFIG = "config"              # membership configuration change
    GLOBAL_STATE = "global_state"  # C-Raft local-log replication of global state
    BATCH = "batch"                # C-Raft global-log batch of local entries


class InsertedBy(enum.Enum):
    """Fast Raft's provenance mark (``insertedBy`` in the paper)."""

    SELF = "self"      # inserted on receipt of a proposal (self-approved)
    LEADER = "leader"  # inserted or confirmed by the term's leader


def make_entry_id(origin: str, request_id: int | str) -> str:
    """Canonical entry id: unique as long as origins number their requests."""
    return f"{origin}:{request_id}"


_NOOP_COUNTER = 0


@dataclass(frozen=True, slots=True)
class LogEntry:
    """One slot of the replicated log."""

    entry_id: str
    kind: EntryKind
    payload: Any
    origin: str
    term: int
    inserted_by: InsertedBy
    _est_size: int | None = _size_memo()
    _stamp_memo: Any = _size_memo()

    def with_mark(self, term: int, inserted_by: InsertedBy) -> "LogEntry":
        """Copy with new term stamp and provenance (leader approval).

        Direct construction rather than :func:`dataclasses.replace`:
        restamping happens for every entry a leader touches, and
        ``replace`` pays field introspection per call for the same
        result. The structural-size memo is inherited: restamping only
        changes fixed-cost fields (an int and an enum), so the copy's
        size is the original's -- without this, every leader approval
        re-walked the payload (the hottest avoidable cost on the C-Raft
        mesh cell). An unmeasured original is measured *before* copying:
        every caller inserts the stamp (which needs the size for durable
        write accounting), and measuring ``self`` memoizes the shared
        broadcast object in place, so N sites stamping one proposal pay
        one walk instead of N.

        The stamp itself is memoized too: a broadcast proposal reaches
        every configuration member as *one* shared message object, and
        each member stamps it with the same ``(term, inserted_by)`` --
        entries are immutable, so they can all hold the identical copy.
        The legacy core keeps the pre-change fresh-copy, fresh-memo
        behaviour so ``bench_perf`` prices both memos."""
        if not perf.LEGACY_CORE:
            memo = self._stamp_memo
            if (memo is not None and memo[0] == term
                    and memo[1] is inserted_by):
                return memo[2]
        stamped = LogEntry(entry_id=self.entry_id, kind=self.kind,
                           payload=self.payload, origin=self.origin,
                           term=term, inserted_by=inserted_by)
        if not perf.LEGACY_CORE:
            size = self._est_size
            if size is None:
                size = estimate_size(self)
            object.__setattr__(stamped, "_est_size", size)
            object.__setattr__(self, "_stamp_memo",
                               (term, inserted_by, stamped))
        return stamped

    @property
    def is_config(self) -> bool:
        return self.kind is EntryKind.CONFIG

    @property
    def is_noop(self) -> bool:
        return self.kind is EntryKind.NOOP

    def same_entry(self, other: "LogEntry") -> bool:
        """Paper's "same entry": identity of the proposed value, not of the
        (term, provenance) stamps."""
        return self.entry_id == other.entry_id

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"LogEntry({self.entry_id!r}, {self.kind.value}, "
                f"t={self.term}, {self.inserted_by.value})")


def make_noop(origin: str, term: int,
              inserted_by: InsertedBy = InsertedBy.LEADER) -> LogEntry:
    """A fresh no-op entry (unique id each call)."""
    global _NOOP_COUNTER
    _NOOP_COUNTER += 1
    return LogEntry(entry_id=make_entry_id(origin, f"noop{_NOOP_COUNTER}"),
                    kind=EntryKind.NOOP, payload=None, origin=origin,
                    term=term, inserted_by=inserted_by)


@dataclass(frozen=True, slots=True)
class ConfigPayload:
    """Payload of a CONFIG entry: the full voting-member list, plus any
    standing non-voting observers (see ``Configuration.observers``).

    ``version`` increases with every configuration entry a leader
    creates, and sites adopt the highest version present in their log
    rather than the paper's "last appended". The rules agree while
    changes serialize strictly (the paper's assumption); versioning stays
    correct when the degraded reconfiguration path (Section IV-F
    liveness) has to run ahead of a stalled earlier change that could
    still be decided afterwards (see DESIGN.md).
    """

    members: tuple[str, ...]
    version: int = 0
    observers: tuple[str, ...] = ()
    _est_size: int | None = _size_memo()

    def __post_init__(self) -> None:
        object.__setattr__(self, "members", tuple(sorted(self.members)))
        object.__setattr__(self, "observers", tuple(sorted(self.observers)))


@dataclass(frozen=True, slots=True)
class GlobalStatePayload:
    """Payload of a C-Raft GLOBAL_STATE entry in a *local* log.

    Replicates the cluster leader's global-log inserts so a future local
    leader inherits the cluster's inter-cluster consensus state. One
    payload may carry several ``(global index, global entry)`` pairs: a
    global AppendEntries batch is persisted through one local consensus
    round rather than one per entry (pure batching; the paper gates each
    insert individually, with identical semantics).

    ``global_commit`` is the gating leader's global commit index at
    creation time. Cluster members advance their *effective* global commit
    only from applied state entries, never from the AppendEntries
    piggyback alone: state entries are totally ordered by the local log,
    so by the time a member sees ``global_commit >= g`` every corrective
    insert the leader performed below ``g`` is already in the member's
    view -- the finality invariant that makes applying safe (DESIGN.md,
    "Global commit propagation"). A payload with no inserts is a pure
    commit marker.

    ``snapshot`` (a :class:`repro.snapshot.Snapshot` over the *global*
    log, or None) replicates a globally committed snapshot image through
    local consensus: when the cluster leader receives a global
    InstallSnapshot, every cluster member must inherit the image the same
    way it inherits gated inserts, or a future local leader's view would
    be missing the compacted global prefix.
    """

    inserts: tuple[tuple[int, "LogEntry"], ...]
    global_commit: int = 0
    snapshot: Any = None
    _est_size: int | None = _size_memo()


@dataclass(frozen=True, slots=True)
class BatchPayload:
    """Payload of a C-Raft BATCH entry in the *global* log.

    ``entries`` are the locally committed DATA entries being published
    cluster-to-cluster; ``local_range`` records the local-log span for
    bookkeeping and tests.
    """

    cluster: str
    sequence: int
    entries: tuple[LogEntry, ...]
    local_range: tuple[int, int]
    _est_size: int | None = _size_memo()

    def __len__(self) -> int:
        return len(self.entries)
