"""Shared consensus-engine machinery.

An *engine* is a transport-agnostic protocol state machine: it never
touches the network directly, only an injected ``send`` callable and the
simulation loop for timers. This is what lets C-Raft run one engine for
intra-cluster consensus and a second engine for inter-cluster consensus
inside the same site, exactly as the paper layers Fast Raft on Fast Raft.

:class:`BaseEngine` implements everything classic Raft and Fast Raft
share: persistent term/vote handling, role transitions, election timers
and vote counting, configuration tracking from the log, commit-index
advancement with ordered apply callbacks, and the configuration-membership
gate ("Messages from sites not listed in the configuration are ignored").
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.consensus.config import Configuration, TransferConfig
from repro.consensus.entry import EntryKind, LogEntry
from repro.consensus.log import RaftLog
from repro.consensus.messages import (
    AppendEntries,
    AppendEntriesResponse,
    ClientRequest,
    CommitNotice,
    InstallSnapshotChunk,
    InstallSnapshotChunkAck,
    InstallSnapshotRequest,
    InstallSnapshotResponse,
    JoinAccepted,
    JoinRequest,
    LeaveAccepted,
    LeaveRequest,
    NotInConfiguration,
    ProposeEntry,
    ProposeToLeader,
    RecoveryProbe,
    RecoveryProbeReply,
    RequestVote,
    RequestVoteResponse,
    VoteEntry,
)
from repro.consensus.timing import TimingConfig
from repro import perf
from repro.errors import ConsensusError
from repro.net.sizes import estimate_size
from repro.sim.loop import SimLoop
from repro.sim.timers import RestartableTimer, randomized_timeout
from repro.sim.trace import TraceRecorder
from repro.snapshot import CompactionPolicy, Snapshot, SnapshotImage, SnapshotStore
from repro.snapshot.chunking import (
    ChunkAssembler,
    SnapshotSender,
    deserialize_snapshot,
    serialize_snapshot,
)
from repro.snapshot.types import governing_config
from repro.storage.stable import StableStore


class Role(enum.Enum):
    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


@dataclass
class EngineContext:
    """Everything an engine needs from its host site."""

    name: str
    loop: SimLoop
    send: Callable[[str, Any], None]
    rng: random.Random
    trace: TraceRecorder
    store: StableStore
    timing: TimingConfig
    #: Disambiguates engines in traces when one site runs several (C-Raft
    #: runs one per level: the cluster name locally, "global" above).
    scope: str = "main"
    #: Called for every committed entry, in log order.
    on_apply: Callable[[int, LogEntry], None] = lambda index, entry: None
    #: Called when an entry originated by this site commits (client reply
    #: path). May fire more than once per entry id; receivers dedup.
    on_origin_commit: Callable[[LogEntry, int], None] = lambda entry, index: None
    #: Called after every role transition (C-Raft reacts to local
    #: leadership changes by joining/leaving the global configuration).
    on_role_change: Callable[["Role"], None] = lambda role: None
    #: Called whenever the engine's known leader changes (C-Raft tracks
    #: the previous local leader so a successor's global join can name
    #: the member it replaces).
    on_leader_change: Callable[[str | None], None] = lambda leader: None
    #: Called when the engine adopts a new configuration.
    on_config_change: Callable[[Configuration], None] = lambda config: None
    #: Snapshotting. ``capture_snapshot`` returns the host's contribution
    #: to a snapshot (machine image + applied ids); ``None`` disables
    #: engine-driven snapshots even when a compaction policy is set.
    capture_snapshot: Callable[[], SnapshotImage] | None = None
    #: Called when a snapshot replaces the compacted prefix (recovery
    #: from a compacted log, or an InstallSnapshot from the leader); the
    #: host must rebuild its state machine from the image.
    on_snapshot_restore: Callable[[Snapshot], None] = lambda snapshot: None
    #: When to compact; None disables compaction.
    compaction: CompactionPolicy | None = None
    #: How snapshots travel (monolithic vs chunked; see TransferConfig).
    transfer: TransferConfig = field(default_factory=TransferConfig)


#: Message types consensus-gated on sender membership.
_GATED_TYPES = (AppendEntries, AppendEntriesResponse, RequestVote,
                RequestVoteResponse, VoteEntry, ProposeEntry,
                ProposeToLeader, InstallSnapshotRequest,
                InstallSnapshotResponse, InstallSnapshotChunk,
                InstallSnapshotChunkAck)

#: The same gate as a type set: messages are final classes, so exact-type
#: membership is equivalent to the isinstance walk and costs one hash
#: lookup instead of scanning an 11-class tuple per delivered message.
_GATED_TYPE_SET = frozenset(_GATED_TYPES)

#: Catch-up traffic a non-member accepts from anyone (see the gate).
_CATCHUP_OPEN_SET = frozenset({AppendEntries, InstallSnapshotRequest,
                               InstallSnapshotChunk})


def handles(*message_types: type) -> Callable:
    """Mark an engine method as the handler for ``message_types``.

    The marks form a per-class registry: :func:`resolve_dispatch_table`
    walks a class's MRO once at class-definition time and produces the
    ``type(message) -> handler`` table :meth:`BaseEngine.handle` consults,
    so steady-state traffic pays a single dict lookup. Overriding a
    marked method by name in a subclass re-points the entry automatically
    (resolution goes through ``getattr`` on the concrete class); the
    decorator is only needed again to claim *additional* message types.
    """
    def mark(fn: Callable) -> Callable:
        fn._handles_types = message_types
        return fn
    return mark


def resolve_dispatch_table(cls: type) -> dict[type, Callable[..., None]]:
    """Build ``cls``'s message-dispatch table from the ``@handles`` marks.

    Returns plain functions (called as ``handler(self, message, sender)``)
    rather than bound methods: the table is shared by every instance of
    the class, resolved exactly once when the class is defined.
    """
    names: dict[type, str] = {}
    for klass in reversed(cls.__mro__):
        for name, attr in vars(klass).items():
            for message_type in getattr(attr, "_handles_types", ()):
                names[message_type] = name
    return {message_type: getattr(cls, name)
            for message_type, name in names.items()}


class BaseEngine:
    """Common state and behaviour for the Raft-family engines."""

    #: Subclasses set this for traces/metrics ("raft", "fastraft", ...).
    protocol_name = "base"

    #: ``type(message) -> handler function`` resolved from the
    #: ``@handles`` marks. Rebuilt for every subclass (below) so mixin
    #: and subclass overrides land in the concrete class's table;
    #: BaseEngine's own table is resolved after the class body.
    _DISPATCH_TABLE: dict[type, Callable[..., None]] = {}

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        cls._DISPATCH_TABLE = resolve_dispatch_table(cls)

    def __init__(self, ctx: EngineContext,
                 bootstrap_config: Configuration) -> None:
        self.ctx = ctx
        self.timing = ctx.timing
        # Tracing is fixed at recorder construction; cache the flag so
        # per-event call sites can skip building trace payload kwargs.
        # The legacy core pins it True: call sites then always build the
        # payload and let _trace's own check drop it, the pre-change cost.
        self._tracing = True if perf.LEGACY_CORE else ctx.trace.enabled
        # --- persistent state (survives crashes via the stable store) ---
        store = ctx.store
        self.log: RaftLog = store.get("log")
        if self.log is None:
            self.log = RaftLog()
            store.set("log", self.log)
        if "bootstrap_config" not in store:
            store.set("bootstrap_config", bootstrap_config)
        self._bootstrap_config: Configuration = store.get("bootstrap_config")
        self.current_term: int = store.get("current_term", 0)
        self.voted_for: str | None = store.get("voted_for", None)
        # --- snapshots / compaction ---
        self.snapshot_store = SnapshotStore(store)
        self.compaction = ctx.compaction
        self.transfer = ctx.transfer
        self._last_snapshot_time = float("-inf")
        self.snapshots_taken = 0
        self.snapshots_installed = 0
        self.snapshots_shipped = 0
        self.snapshot_chunks_sent = 0
        self.entries_compacted = 0
        # Recovery-probe outcomes (probe-before-trust handshake, see
        # begin_recovery_probe); summed across engines by
        # metrics.summary.tally_probe_outcomes.
        self.recovery_probes_confirmed = 0
        self.recovery_probes_rejected = 0
        self.recovery_probes_timeout = 0
        # target -> (snapshot index, send time): a snapshot is a bulk
        # transfer, so unlike AppendEntries it is not re-sent every
        # heartbeat while unanswered.
        self._snapshot_inflight: dict[str, tuple[int, float]] = {}
        # Chunked-mode leader state: target -> in-progress transfer.
        self._chunk_senders: dict[str, SnapshotSender] = {}
        # Chunked-mode follower state: at most one reassembly buffer (a
        # newer snapshot or a term change discards a partial transfer).
        self._chunk_assembler: ChunkAssembler | None = None
        # Receiver side: index of an install still working through an
        # asynchronous gate (C-Raft replicates the image via local
        # consensus first); duplicate requests it covers are dropped.
        self._install_pending: int | None = None
        # --- volatile state ---
        self.commit_index = 0
        self.role = Role.FOLLOWER
        self._leader_id: str | None = None
        self._votes_received: set[str] = set()
        persisted = self.snapshot_store.latest
        if persisted is not None:
            # Recovery with a compacted log: the snapshot stands in for
            # the prefix it swallowed -- resume commitIndex there and hand
            # the image to the host before replaying the retained tail.
            self.commit_index = persisted.last_included_index
            ctx.on_snapshot_restore(persisted)
        self._configuration = self._derive_configuration()
        # Extra senders whose consensus messages are accepted although they
        # are not configuration members (the leader's catch-up targets).
        self._extra_allowed: set[str] = set()
        # Sender-gate fast set: self + members + observers, rebuilt on
        # every configuration adoption so the per-message gate is one
        # frozenset lookup instead of a Configuration method call plus
        # tuple scans (_extra_allowed stays separate -- it mutates on
        # catch-up paths and is already a plain set).
        self._gate_senders: frozenset[str] = frozenset()
        self._rebuild_gate_senders()
        self._election_timer = RestartableTimer(ctx.loop,
                                                self._on_election_timeout)
        # Probe-before-trust recovery (see begin_recovery_probe): armed
        # only by a host-driven recovery, never during normal operation.
        self._recovery_probe_timer = RestartableTimer(
            ctx.loop, self._on_recovery_probe_timeout)
        self._recovering = False
        self._stopped = False
        # --- leader leases (linearizable local reads; inert while
        # --- timing.lease_duration == 0, the default) ---
        self._lease_enabled = self.timing.lease_duration > 0
        #: follower -> send time of the newest beat it acked. The lease
        #: renews from beat *send* times a quorum provably answered.
        self._lease_acks: dict[str, float] = {}
        #: What the current leader last advertised to us; an active
        #: lease suppresses our election votes for other candidates
        #: (that refusal is what makes the lease a real guarantee).
        self._follower_lease_until = 0.0
        #: Server-installed hook fired on every lease-carrying beat:
        #: ``hook(sent_at, leader_commit, lease_until)``. Follower lease
        #: reads drain against it.
        self.on_lease_beat: Any = None
        if perf.LEGACY_CORE:
            # Pre-flattening core: per-instance bound-method dict plus
            # the isinstance-walk sender gate, kept selectable so
            # bench_perf prices the flattened dispatch against it.
            self._dispatch = self._build_dispatch()
            self.handle = self._legacy_handle  # type: ignore[method-assign]
        else:
            # _send is a pure forwarder to the injected transport; bind
            # the transport directly so every outbound message skips one
            # frame (the legacy core keeps the forwarder, pre-change).
            self._send = ctx.send  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.ctx.name

    @property
    def configuration(self) -> Configuration:
        return self._configuration

    @property
    def leader_id(self) -> str | None:
        return self._leader_id

    @leader_id.setter
    def leader_id(self, value: str | None) -> None:
        if value != self._leader_id:
            self._leader_id = value
            self.ctx.on_leader_change(value)

    @property
    def is_leader(self) -> bool:
        return self.role is Role.LEADER

    @property
    def is_member(self) -> bool:
        return self.name in self._configuration

    def now(self) -> float:
        return self.ctx.loop.now()

    def _trace(self, category: str, **payload: Any) -> None:
        # Check before formatting: with tracing disabled (the benchmark
        # configuration) the f-string and record call would still cost
        # real time on the hottest engine paths.
        trace = self.ctx.trace
        if trace.enabled:
            trace.record(self.now(), self.name,
                         f"{self.protocol_name}.{category}",
                         scope=self.ctx.scope, **payload)

    def _send(self, dst: str, message: Any) -> None:
        self.ctx.send(dst, message)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin operating as a follower."""
        self._stopped = False
        self._trace("start", term=self.current_term,
                    members=self._configuration.members)
        self._arm_election_timer()

    def stop(self) -> None:
        """Cancel all timers (crash or shutdown). State is preserved."""
        self._stopped = True
        self._election_timer.cancel()
        self._recovery_probe_timer.cancel()
        self._recovering = False
        self._stop_role_timers()

    def _stop_role_timers(self) -> None:
        """Cancel role-specific timers; subclasses extend."""

    # ------------------------------------------------------------------
    # Persistence helpers
    # ------------------------------------------------------------------
    def _persist_term_vote(self) -> None:
        self.ctx.store.set("current_term", self.current_term)
        self.ctx.store.set("voted_for", self.voted_for)

    def _derive_configuration(self) -> Configuration:
        """Highest-versioned CONFIG entry wins; else the configuration the
        snapshot carried (its CONFIG entries are compacted away); else the
        bootstrap config (see ConfigPayload.version for why not simply
        "last inserted").

        Tentative entries are excluded (``decided_upto``): a CONFIG entry
        governs once it is leader-approved or committed, not from its own
        proposal broadcast -- see ``RaftLog.best_config_entry`` for the
        2-voter split-brain this prevents."""
        __, members, observers = governing_config(
            self.snapshot_store.latest,
            self.log.best_config_entry(decided_upto=self.commit_index))
        if members is None:
            return self._bootstrap_config
        return Configuration(members, observers)

    def _max_known_config_version(self) -> int:
        """Highest configuration version in the log *or* swallowed by the
        snapshot (compaction must not reset version numbering)."""
        snapshot = self.snapshot_store.latest
        base = snapshot.config_version if snapshot is not None else 0
        return max(self.log.max_config_version(), base)

    def _refresh_configuration(self) -> None:
        new_config = self._derive_configuration()
        if new_config != self._configuration:
            previous = self._configuration
            self._configuration = new_config
            self._rebuild_gate_senders()
            self._trace("config.adopt", members=new_config.members,
                        observers=new_config.observers)
            if (self.name in previous.observers
                    and self.name in new_config.members):
                # Observer-to-voter promotion changes the governing
                # config mid-stream: a partially assembled snapshot
                # transfer was addressed to the old role and could carry
                # a pre-promotion configuration -- discard it and let the
                # leader restart the ship, like a term bump does.
                self._discard_partial_transfer("promoted")
            self._on_configuration_changed()
            self.ctx.on_config_change(new_config)

    def _on_configuration_changed(self) -> None:
        """Hook for subclasses (e.g. leader drops state for removed sites)."""

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def _build_dispatch(self) -> dict[type, Callable[[Any, str], None]]:
        return {
            AppendEntries: self._handle_append_entries,
            AppendEntriesResponse: self._handle_append_entries_response,
            RequestVote: self._handle_request_vote,
            RequestVoteResponse: self._handle_request_vote_response,
            CommitNotice: self._handle_commit_notice,
            ClientRequest: self._handle_client_request,
            JoinRequest: self._handle_join_request,
            LeaveRequest: self._handle_leave_request,
            JoinAccepted: self._handle_join_accepted,
            LeaveAccepted: self._handle_leave_accepted,
            NotInConfiguration: self._handle_not_in_configuration,
            RecoveryProbe: self._handle_recovery_probe,
            RecoveryProbeReply: self._handle_recovery_probe_reply,
            InstallSnapshotRequest: self._handle_install_snapshot,
            InstallSnapshotResponse: self._handle_install_snapshot_response,
            InstallSnapshotChunk: self._handle_install_snapshot_chunk,
            InstallSnapshotChunkAck: self._handle_install_snapshot_chunk_ack,
        }

    def handle(self, message: Any, sender: str) -> None:
        """Entry point for every delivered message.

        Flat dispatch: one type-set membership check for the sender gate
        and one dict lookup in the class-level ``@handles`` table. The
        legacy core swaps in :meth:`_legacy_handle` at construction.
        """
        if self._stopped:
            return
        message_type = type(message)
        if (message_type in _GATED_TYPE_SET
                and not self._gated_sender_ok(message_type, sender)):
            self._on_gated_message(message, sender)
            return
        handler = self._DISPATCH_TABLE.get(message_type)
        if handler is None:
            raise ConsensusError(
                f"{self.name}: no handler for {message_type.__name__}")
        handler(self, message, sender)

    def _legacy_handle(self, message: Any, sender: str) -> None:
        """Pre-flattening entry point (isinstance gate + per-instance
        bound-method dict), selected under ``REPRO_LEGACY_CORE``."""
        if self._stopped:
            return
        if not self._sender_allowed(message, sender):
            self._on_gated_message(message, sender)
            return
        handler = self._dispatch.get(type(message))
        if handler is None:
            raise ConsensusError(
                f"{self.name}: no handler for {type(message).__name__}")
        handler(message, sender)

    def _rebuild_gate_senders(self) -> None:
        config = self._configuration
        self._gate_senders = frozenset(
            (self.name, *config.members, *config.observers))

    def _gated_sender_ok(self, message_type: type, sender: str) -> bool:
        """Membership gate for a type already known to be in
        ``_GATED_TYPE_SET`` (same acceptance rule as the legacy
        :meth:`_sender_allowed`, minus the isinstance and tuple walks).

        ``_gate_senders`` covers self + members + observers (observers
        replicate the log: their acks and slot votes must reach the
        leader; quorum rules decide what they count for)."""
        if sender in self._gate_senders or sender in self._extra_allowed:
            return True
        # A site that is not (or no longer) a voting member accepts
        # catch-up AppendEntries/InstallSnapshot from anyone: its own
        # configuration view is stale by definition, and stale *leaders*
        # are rejected by the term check inside the handler.
        if message_type in _CATCHUP_OPEN_SET and not self.is_member:
            return True
        return False

    def _sender_allowed(self, message: Any, sender: str) -> bool:
        if not isinstance(message, _GATED_TYPES):
            return True
        if sender == self.name or sender in self._configuration:
            return True
        if sender in self._configuration.observers:
            return True
        if sender in self._extra_allowed:
            return True
        if (isinstance(message, (AppendEntries, InstallSnapshotRequest,
                                 InstallSnapshotChunk))
                and not self.is_member):
            return True
        return False

    def _on_gated_message(self, message: Any, sender: str) -> None:
        """Tell an evicted site it is out of the configuration so it can
        rejoin (paper Section IV-D: such a site "will need to send a join
        request to return to the configuration")."""
        self._trace("gate.ignored", sender=sender,
                    type=type(message).__name__)
        if isinstance(message, (RequestVote, VoteEntry, AppendEntries)):
            self._send(sender, NotInConfiguration(
                term=self.current_term,
                members=self._configuration.members,
                leader_hint=self.leader_id))

    # ------------------------------------------------------------------
    # Probe-before-trust recovery (README "Crash recovery & rejoin")
    # ------------------------------------------------------------------
    def begin_recovery_probe(self) -> None:
        """Ask the restored configuration whether it still governs before
        trusting it. The host calls this right after a recovery start: a
        site evicted by the member timeout while down restores a
        configuration that still lists it, so without the probe it idles
        as a silent follower until an accidental election timeout trips
        the ``NotInConfiguration`` rejoin path. Peers answer with their
        governing config epoch; a strictly newer epoch that excludes us
        routes straight onto the rejoin path, a confirmation resumes
        normal operation, and a timeout falls back to trusting the
        restored configuration outright (a fully partitioned recovery
        must still come up)."""
        if self._stopped or self.timing.recovery_probe_timeout <= 0:
            return
        contacts = set(self._configuration.members)
        if self.leader_id is not None:
            contacts.add(self.leader_id)
        if self.voted_for is not None:
            # The persisted vote is the freshest leader hint stable
            # storage offers (granting it named a then-live candidate).
            contacts.add(self.voted_for)
        contacts.discard(self.name)
        if not contacts:
            return
        self._recovering = True
        probe = RecoveryProbe(site=self.name,
                              config_version=self._governing_config_version(),
                              term=self.current_term)
        for contact in sorted(contacts):
            self._send(contact, probe)
        self._recovery_probe_timer.reset(self.timing.recovery_probe_timeout)
        self._trace("recovery.probe", contacts=sorted(contacts),
                    config_version=probe.config_version)

    def _governing_config_version(self) -> int:
        """Version of the configuration that currently governs (snapshot
        base vs best decided CONFIG entry -- the same resolution as
        :meth:`_derive_configuration`)."""
        version, _, __ = governing_config(
            self.snapshot_store.latest,
            self.log.best_config_entry(decided_upto=self.commit_index))
        return version or 0

    @handles(RecoveryProbe)
    def _handle_recovery_probe(self, msg: RecoveryProbe, sender: str) -> None:
        self._trace("recovery.probed", site=msg.site,
                    config_version=msg.config_version)
        self._send(sender, RecoveryProbeReply(
            term=self.current_term,
            config_version=self._governing_config_version(),
            members=self._configuration.members,
            leader_hint=self.leader_id,
            is_member=msg.site in self._configuration))

    @handles(RecoveryProbeReply)
    def _handle_recovery_probe_reply(self, msg: RecoveryProbeReply,
                                     sender: str) -> None:
        ours = self._governing_config_version()
        if not msg.is_member and msg.config_version > ours:
            # A strictly newer configuration excludes us: the restored
            # membership was stale. Acted on even after the probe timed
            # out -- a late reply is still fresher knowledge than the
            # stale configuration we fell back to trusting. (Once we
            # rejoin, our own governing version overtakes the reply's, so
            # stragglers land in the stale branch below.)
            self._finish_recovery_probe("rejected")
            self._on_recovery_probe_rejected(msg, sender)
            return
        if msg.is_member and msg.config_version >= ours:
            self._observe_term(msg.term, leader_hint=msg.leader_hint)
            if self.leader_id is None and msg.leader_hint is not None:
                self.leader_id = msg.leader_hint
            self._finish_recovery_probe("confirmed")
            return
        # The peer's view is staler than our restored one: evidence of
        # nothing -- keep waiting for the rest of the fan-out.

    def _finish_recovery_probe(self, outcome: str) -> None:
        if not self._recovering:
            return
        self._recovering = False
        self._recovery_probe_timer.cancel()
        if outcome == "confirmed":
            self.recovery_probes_confirmed += 1
        elif outcome == "rejected":
            self.recovery_probes_rejected += 1
        else:
            self.recovery_probes_timeout += 1
        self._trace("recovery.probe_done", outcome=outcome)

    def _on_recovery_probe_timeout(self) -> None:
        if self._stopped:
            return
        # Nobody answered (partition, lossy probe path, everyone down):
        # trust the restored configuration after all -- exactly the
        # pre-probe behaviour, so an eviction is still learned eventually
        # through the election-timeout NotInConfiguration path.
        self._finish_recovery_probe("timeout")

    def _on_recovery_probe_rejected(self, msg: RecoveryProbeReply,
                                    sender: str) -> None:
        """Hook: Fast Raft funnels this into its NotInConfiguration
        rejoin path; engines without a membership protocol only note it."""
        self._trace("recovery.stale_config", via=sender,
                    members=msg.members, leader_hint=msg.leader_hint)

    # ------------------------------------------------------------------
    # Leader leases (linearizable local reads)
    # ------------------------------------------------------------------
    @property
    def lease_enabled(self) -> bool:
        return self._lease_enabled

    def _lease_expiry(self, now: float) -> float:
        """Until when this leader's lease provably holds: the
        ``classic_quorum``-th newest acked beat send time, plus the
        lease duration, minus the clock-skew margin. A quorum of
        replicas acked beats sent at or after that base time -- and an
        acked lease-carrying beat is a promise to refuse election votes
        until its advertised expiry -- so no competing leader can be
        elected (and commit writes this leader has not seen) before it.
        Returns 0.0 when no quorum has acked anything yet."""
        config = self._configuration
        name = self.ctx.name
        acks_get = self._lease_acks.get
        times = [now if member == name else acks_get(member, 0.0)
                 for member in config.members]
        quorum = config.classic_quorum
        if quorum > len(times):
            return 0.0
        times.sort(reverse=True)
        base = times[quorum - 1]
        if base <= 0.0:
            return 0.0
        return base + self.timing.lease_duration - self.timing.lease_skew

    def lease_valid(self, now: float) -> bool:
        """Leader-side check: may this engine serve a local linearizable
        read right now?"""
        return (self._lease_enabled and self.role is Role.LEADER
                and self._lease_expiry(now) > now)

    def _record_lease_ack(self, follower: str, beat_sent_at: float) -> None:
        if beat_sent_at > self._lease_acks.get(follower, 0.0):
            self._lease_acks[follower] = beat_sent_at

    def _note_lease_beat(self, msg: Any) -> None:
        """Follower side: a lease-carrying AppendEntries arrived (called
        after its entries were absorbed and the commit index advanced)."""
        if msg.lease_until > self._follower_lease_until:
            self._follower_lease_until = msg.lease_until
        hook = self.on_lease_beat
        if hook is not None:
            hook(msg.sent_at, msg.leader_commit, msg.lease_until)

    # ------------------------------------------------------------------
    # Term handling
    # ------------------------------------------------------------------
    def _observe_term(self, term: int, leader_hint: str | None = None) -> None:
        """Adopt a higher term and fall back to follower if needed."""
        if term > self.current_term:
            self.current_term = term
            self.voted_for = None
            self._persist_term_vote()
            # A partial chunked transfer is tied to its shipping leader's
            # term; the new term's leader restarts from scratch.
            self._discard_partial_transfer("term_change")
            self._become_follower(leader_hint)

    # ------------------------------------------------------------------
    # Role transitions
    # ------------------------------------------------------------------
    def _become_follower(self, leader_hint: str | None = None) -> None:
        previous = self.role
        self.role = Role.FOLLOWER
        if leader_hint is not None:
            self.leader_id = leader_hint
        self._votes_received.clear()
        self._chunk_senders.clear()  # outbound transfers are leader state
        self._snapshot_inflight.clear()
        self._stop_role_timers()
        if previous is not Role.FOLLOWER:
            self._trace("role.follower", term=self.current_term)
            self.ctx.on_role_change(Role.FOLLOWER)
        self._arm_election_timer()

    def _become_candidate(self) -> None:
        self.role = Role.CANDIDATE
        self.current_term += 1
        self.voted_for = self.name
        self._persist_term_vote()
        self.leader_id = None
        self._votes_received = {self.name}
        self._trace("role.candidate", term=self.current_term)
        request = self._make_vote_request()
        for site in self._vote_request_targets():
            self._send(site, request)
        self._arm_election_timer()
        self._maybe_win_election()  # single-member configuration

    def _become_leader(self) -> None:
        self.role = Role.LEADER
        self.leader_id = self.name
        self._election_timer.cancel()
        self._trace("role.leader", term=self.current_term)
        self._init_leader_state()
        self.ctx.on_role_change(Role.LEADER)

    def _vote_request_targets(self) -> list[str]:
        """Members plus observers: observer ballots are only *counted*
        when the tiebreaker rule applies, but soliciting them is always
        harmless (one vote per term either way)."""
        return list(self._configuration.replicas_without(self.name))

    # Subclass responsibilities ----------------------------------------
    def _make_vote_request(self) -> RequestVote:
        raise NotImplementedError

    def _init_leader_state(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Election timer
    # ------------------------------------------------------------------
    def _arm_election_timer(self) -> None:
        timeout = randomized_timeout(self.ctx.rng,
                                     self.timing.election_timeout_min,
                                     self.timing.election_timeout_max)
        self._election_timer.reset(timeout)

    def _on_election_timeout(self) -> None:
        if self._stopped or self.role is Role.LEADER:
            return
        if not self.is_member:
            # Evicted (or never-admitted) sites cannot win an election;
            # they wait for membership handling instead of spamming votes.
            self._on_election_timeout_as_nonmember()
            return
        self._trace("election.timeout", term=self.current_term)
        self._become_candidate()

    def _on_election_timeout_as_nonmember(self) -> None:
        """Hook: Fast Raft launches a (re)join request here."""
        self._arm_election_timer()

    # ------------------------------------------------------------------
    # Elections: voting
    # ------------------------------------------------------------------
    @handles(RequestVote)
    def _handle_request_vote(self, msg: RequestVote, sender: str) -> None:
        # "Sites that receive the RequestVote message immediately move to
        # the new term."
        self._observe_term(msg.term)
        if msg.term < self.current_term:
            self._send(sender, self._make_vote_response(False))
            return
        if (self._lease_enabled and msg.candidate_id != self._leader_id
                and self.ctx.loop.now() < self._follower_lease_until):
            # Acking a lease-carrying beat promised the leader no rival
            # would be elected before the advertised expiry; honoring
            # that promise here is what makes lease reads linearizable.
            self._trace("election.vote_suppressed",
                        candidate=msg.candidate_id,
                        lease_until=self._follower_lease_until)
            self._send(sender, self._make_vote_response(False))
            return
        can_vote = self.voted_for in (None, msg.candidate_id)
        granted = can_vote and self._candidate_up_to_date(msg)
        if granted:
            self.voted_for = msg.candidate_id
            self._persist_term_vote()
            self._arm_election_timer()
        self._trace("election.vote", candidate=msg.candidate_id,
                    term=msg.term, granted=granted)
        self._send(sender, self._make_vote_response(granted))

    def _candidate_up_to_date(self, msg: RequestVote) -> bool:
        raise NotImplementedError

    def _make_vote_response(self, granted: bool) -> RequestVoteResponse:
        return RequestVoteResponse(term=self.current_term,
                                   vote_granted=granted, voter=self.name)

    @handles(RequestVoteResponse)
    def _handle_request_vote_response(self, msg: RequestVoteResponse,
                                      sender: str) -> None:
        self._observe_term(msg.term)
        if self.role is not Role.CANDIDATE or msg.term < self.current_term:
            return
        if msg.vote_granted and (msg.voter in self._configuration
                                 or msg.voter in
                                 self._configuration.observers):
            self._votes_received.add(msg.voter)
            self._absorb_vote_response(msg)
            self._maybe_win_election()

    def _absorb_vote_response(self, msg: RequestVoteResponse) -> None:
        """Hook: Fast Raft collects self-approved entries for recovery."""

    def _maybe_win_election(self) -> None:
        if self.role is not Role.CANDIDATE:
            return
        # is_election_quorum == classic quorum unless the voting set is
        # degenerate (<= 2 members) and an observer tiebreaker exists.
        if self._configuration.is_election_quorum(self._votes_received):
            self._trace("election.won", term=self.current_term,
                        votes=sorted(self._votes_received))
            self._become_leader()

    # ------------------------------------------------------------------
    # Commit advancement
    # ------------------------------------------------------------------
    def _advance_commit_index(self, new_commit: int) -> None:
        """Move ``commit_index`` to ``new_commit``, applying in order.

        Stops early at a hole: a site never considers an entry committed
        before holding it (contiguity guard; see DESIGN.md).

        The current core runs the sweep batch-natively: the loop
        constants (log accessor, apply/origin callbacks, trace flag)
        resolve once per sweep instead of once per entry. The per-entry
        *callback order* is untouched -- apply callbacks send messages
        (client replies, C-Raft batch proposals), so reordering them
        against each other would shift the network RNG stream and break
        the identical-trajectory invariant between the cores.
        ``commit_index`` is still read back each iteration because an
        apply callback may advance it reentrantly.
        """
        if perf.LEGACY_CORE:
            advanced = False
            while self.commit_index < new_commit:
                next_index = self.commit_index + 1
                entry = self.log.get(next_index)
                if entry is None:
                    break
                self.commit_index = next_index
                advanced = True
                if self._tracing:
                    self._trace("commit", index=next_index,
                                entry_id=entry.entry_id,
                                kind=entry.kind.value, term=entry.term)
                if entry.kind is EntryKind.CONFIG:
                    # A fast-track commit can land on a still-self-approved
                    # copy of the entry; tentative configs do not govern
                    # until decided, so activation happens here at latest.
                    self._refresh_configuration()
                self._on_entry_committed(next_index, entry)
                self.ctx.on_apply(next_index, entry)
                if entry.origin == self.name:
                    self.ctx.on_origin_commit(entry, next_index)
            if advanced:
                self._maybe_compact()
            return
        start = self.commit_index
        if start >= new_commit:
            return
        log_get = self.log.get
        ctx = self.ctx
        on_apply = ctx.on_apply
        on_origin = ctx.on_origin_commit
        committed_hook = self._on_entry_committed
        tracing = self._tracing
        name = ctx.name
        while self.commit_index < new_commit:
            next_index = self.commit_index + 1
            entry = log_get(next_index)
            if entry is None:
                break
            self.commit_index = next_index
            if tracing:
                self._trace("commit", index=next_index,
                            entry_id=entry.entry_id,
                            kind=entry.kind.value, term=entry.term)
            if entry.kind is EntryKind.CONFIG:
                self._refresh_configuration()
            committed_hook(next_index, entry)
            on_apply(next_index, entry)
            if entry.origin == name:
                on_origin(entry, next_index)
        if self.commit_index != start:
            self._maybe_compact()

    def _on_entry_committed(self, index: int, entry: LogEntry) -> None:
        """Hook: leaders notify origins, finish config changes, etc."""

    # ------------------------------------------------------------------
    # Snapshotting and log compaction
    # ------------------------------------------------------------------
    def _maybe_compact(self) -> None:
        policy = self.compaction
        if policy is None or self.ctx.capture_snapshot is None:
            return
        if policy.should_compact(self.commit_index, self.log.snapshot_index,
                                 self.now(), self._last_snapshot_time):
            self.take_snapshot()

    def take_snapshot(self) -> Snapshot | None:
        """Capture the applied state at ``commit_index``, persist it, and
        compact the log (keeping the policy's retained tail)."""
        if self.ctx.capture_snapshot is None:
            return None
        if self.commit_index <= self.log.snapshot_index:
            return None  # nothing new to cover
        image = self.ctx.capture_snapshot()
        # The snapshot covers only the committed prefix, so it must carry
        # the configuration governing *at commit_index* -- not the live
        # one, which may come from an uncommitted CONFIG entry that a new
        # leader could still truncate (the snapshot copy would survive
        # that truncation and immortalize a never-committed membership).
        version, members, observers = governing_config(
            self.snapshot_store.latest,
            self.log.best_config_entry(upto=self.commit_index))
        snapshot = Snapshot(
            last_included_index=self.commit_index,
            last_included_term=self.log.term_at(self.commit_index),
            machine_state=image.machine_state,
            applied_ids=image.applied_ids,
            config_members=members, config_version=version,
            config_observers=observers,
            taken_at=self.now(), origin=self.name)
        self.snapshot_store.save(snapshot)
        retain = self.compaction.retain if self.compaction is not None else 0
        compact_upto = self.commit_index - retain
        if compact_upto > self.log.snapshot_index:
            self.entries_compacted += self.log.compact_to(compact_upto)
            # Compaction rewrites the log file: charge the retained tail.
            self.ctx.store.touch("log", size=self._retained_log_size())
        self.snapshots_taken += 1
        self._last_snapshot_time = self.now()
        self._trace("snapshot.taken", index=snapshot.last_included_index,
                    term=snapshot.last_included_term,
                    compacted_to=self.log.snapshot_index)
        return snapshot

    def _retained_log_size(self) -> int:
        """Payload size of every retained entry (the bytes a log rewrite
        after compaction actually puts on disk). The log holds at most
        about one compaction threshold of entries here, so the walk is
        cheap and happens only at compaction/install sites."""
        return sum(estimate_size(entry) for _, entry in self.log)

    def _send_install_snapshot(self, target: str) -> None:
        """Ship the newest snapshot to a follower whose needed prefix was
        compacted away (leader side; replaces AppendEntries)."""
        snapshot = self.snapshot_store.latest
        if snapshot is None:
            return  # compacted log without a snapshot cannot happen
        if self.transfer.chunked:
            self._send_snapshot_chunks(target, snapshot)
            return
        inflight = self._snapshot_inflight.get(target)
        if (inflight is not None
                and inflight[0] == snapshot.last_included_index
                and self.now() - inflight[1] < self.timing.proposal_timeout):
            # Give the in-flight bulk transfer a chance to be acked; probe
            # so a target that lost the transfer (crash, message loss)
            # answers and gets a prompt re-ship.
            self._send_snapshot_probe(target, snapshot.last_included_index,
                                      snapshot.last_included_term)
            return
        self._snapshot_inflight[target] = (snapshot.last_included_index,
                                           self.now())
        self.snapshots_shipped += 1
        self._trace("snapshot.ship", to=target,
                    index=snapshot.last_included_index)
        self._send(target, InstallSnapshotRequest(
            term=self.current_term, leader_id=self.name, snapshot=snapshot))

    def _send_snapshot_probe(self, target: str, snapshot_index: int,
                             snapshot_term: int) -> None:
        """An empty AppendEntries anchored at the snapshot point: a
        follower that holds the snapshot answers success (resuming normal
        replication), one that lost the transfer answers a failed match,
        prompting an immediate re-ship/nudge. Shared by the monolithic
        in-flight wait and the chunked stall detector."""
        self._send(target, AppendEntries(
            term=self.current_term, leader_id=self.name,
            prev_log_index=snapshot_index, prev_log_term=snapshot_term,
            entries=(), leader_commit=self.commit_index,
            global_commit=self._global_commit_piggyback()))

    def _global_commit_piggyback(self) -> int:
        """C-Raft's local level overrides this (see ReplicationMixin)."""
        return 0

    # ------------------------------------------------------------------
    # Chunked snapshot transfer: leader side
    # ------------------------------------------------------------------
    def _send_snapshot_chunks(self, target: str, snapshot: Snapshot) -> None:
        """Drive the chunked transfer of ``snapshot`` to ``target``.

        Called from the heartbeat path (every beat while the follower's
        nextIndex sits below the compaction point), so it doubles as the
        stall detector: no new chunk goes out while the window is full,
        and unacked chunks are resent after the retry timeout.
        """
        sender = self._chunk_senders.get(target)
        if sender is not None and sender.snapshot_index != \
                snapshot.last_included_index:
            # Compaction advanced mid-transfer: the newer image
            # supersedes the one in flight.
            self._trace("snapshot.transfer_superseded", to=target,
                        old=sender.snapshot_index,
                        new=snapshot.last_included_index)
            sender = None
        if sender is None:
            data = serialize_snapshot(snapshot)
            sender = SnapshotSender(snapshot, data,
                                    self.transfer.chunk_size, self.now())
            self._chunk_senders[target] = sender
            self.snapshots_shipped += 1
            self._trace("snapshot.ship", to=target,
                        index=snapshot.last_included_index,
                        chunks=len(sender.chunks), bytes=len(data))
            self._pump_chunks(target, sender)
            return
        retry = (self.transfer.retry_timeout
                 if self.transfer.retry_timeout is not None
                 else self.timing.proposal_timeout)
        if self.now() - sender.last_activity < retry:
            self._pump_chunks(target, sender)  # window may have opened
            # A follower that lost its reassembly buffer (crash
            # mid-transfer) fails the probe's match, which nudges the
            # transfer awake instead of waiting out the retry timeout.
            self._send_snapshot_probe(target, sender.snapshot_index,
                                      sender.snapshot.last_included_term)
            return
        # Stalled: chunks or acks were lost -- or everything was acked
        # but the install confirmation never came (the follower crashed
        # and its reassembly buffer died with it); resend accordingly.
        if sender.done:
            sender.restart()
            self._trace("snapshot.transfer_restart", to=target,
                        index=sender.snapshot_index,
                        restarts=sender.restarts)
        else:
            sender.requeue_unacked()
        self._pump_chunks(target, sender)

    def _pump_chunks(self, target: str, sender: SnapshotSender) -> None:
        """Put chunks on the wire up to the configured window."""
        sent_any = False
        for offset, _, data, done in sender.take(self.transfer.chunk_window):
            self._send(target, InstallSnapshotChunk(
                term=self.current_term, leader_id=self.name,
                last_included_index=sender.snapshot_index,
                last_included_term=sender.snapshot.last_included_term,
                offset=offset, data=data,
                total_size=sender.total_size, done=done))
            self.snapshot_chunks_sent += 1
            sent_any = True
        if sent_any:
            sender.last_activity = self.now()

    @handles(InstallSnapshotChunkAck)
    def _handle_install_snapshot_chunk_ack(self, msg: InstallSnapshotChunkAck,
                                           sender: str) -> None:
        self._observe_term(msg.term)
        if self.role is not Role.LEADER or msg.term < self.current_term:
            return
        self._note_follower_alive(msg.follower)
        transfer = self._chunk_senders.get(msg.follower)
        if transfer is None or transfer.snapshot_index != \
                msg.last_included_index:
            return  # ack for a transfer that no longer exists
        if not msg.success:
            return  # stale-term reject; _observe_term handled any news
        transfer.last_ack = self.now()
        if transfer.ack(msg.offset):
            transfer.last_activity = self.now()
        self._pump_chunks(msg.follower, transfer)

    def _nudge_chunk_transfer(self, follower: str) -> None:
        """A failed AppendEntries response arrived from a follower with a
        transfer in progress: if no ack has landed for a couple of beats,
        the follower has evidently lost the transfer state (crash and
        recovery wipes its reassembly buffer), so resend without waiting
        for the retry timeout. Ack-healthy transfers ignore the nudge --
        the probe AppendEntries fails by design until the install lands.
        """
        sender = self._chunk_senders.get(follower)
        if sender is None:
            return
        # The grace period must outlast one transfer round trip, which
        # the leader cannot measure; half the retry timeout (floored at
        # two beats) covers every WAN route this repo models while still
        # beating the full stall retry by 2x.
        retry = (self.transfer.retry_timeout
                 if self.transfer.retry_timeout is not None
                 else self.timing.proposal_timeout)
        grace = max(2 * self.timing.heartbeat_interval, retry / 2)
        if self.now() - sender.last_ack < grace:
            return
        sender.last_ack = self.now()  # rate-limit repeated nudges
        if sender.done:
            sender.restart()
        else:
            sender.requeue_unacked()
        self._trace("snapshot.transfer_nudged", to=follower,
                    index=sender.snapshot_index)
        self._pump_chunks(follower, sender)

    @handles(InstallSnapshotRequest)
    def _handle_install_snapshot(self, msg: InstallSnapshotRequest,
                                 sender: str) -> None:
        self._observe_term(msg.term, leader_hint=msg.leader_id)
        snapshot = msg.snapshot
        if msg.term < self.current_term:
            self._send(sender, InstallSnapshotResponse(
                term=self.current_term, follower=self.name,
                last_included_index=snapshot.last_included_index,
                success=False))
            return
        # Like AppendEntries, a current-term snapshot implies an elected
        # leader: convert to follower / refresh the election timer.
        if self.role is not Role.FOLLOWER:
            self._become_follower(msg.leader_id)
        else:
            self.leader_id = msg.leader_id
            self._arm_election_timer()
        self._accept_snapshot(snapshot, sender)

    def _accept_snapshot(self, snapshot: Snapshot, sender: str) -> None:
        """Common tail of both transfer modes: a complete snapshot is in
        hand; route it through the (possibly asynchronous) install gate
        and confirm to the leader."""
        if snapshot.last_included_index <= self.commit_index:
            # Already past the snapshot point; just ack so the leader
            # advances nextIndex and resumes AppendEntries.
            self._send(sender, InstallSnapshotResponse(
                term=self.current_term, follower=self.name,
                last_included_index=snapshot.last_included_index,
                success=True))
            return
        if (self._install_pending is not None
                and snapshot.last_included_index <= self._install_pending):
            # An install covering this point is already mid-gate; a
            # duplicate would open another (expensive) gated round.
            return
        self._install_pending = snapshot.last_included_index
        self._gate_snapshot_install(
            snapshot, lambda: self._snapshot_install_done(sender, snapshot))

    # ------------------------------------------------------------------
    # Chunked snapshot transfer: follower side
    # ------------------------------------------------------------------
    def _discard_partial_transfer(self, reason: str) -> None:
        """Drop the reassembly buffer: a partial image is useless, and
        holding it across a term change or a newer snapshot would let a
        stale transfer complete from mixed-generation chunks."""
        assembler = self._chunk_assembler
        if assembler is None:
            return
        self._chunk_assembler = None
        self._trace("snapshot.transfer_discarded", reason=reason,
                    index=assembler.last_included_index,
                    received=assembler.received_bytes,
                    total=assembler.total_size)

    @handles(InstallSnapshotChunk)
    def _handle_install_snapshot_chunk(self, msg: InstallSnapshotChunk,
                                       sender: str) -> None:
        self._observe_term(msg.term, leader_hint=msg.leader_id)
        if msg.term < self.current_term:
            # A deposed leader's straggler; the reject carries our term.
            self._send(sender, InstallSnapshotChunkAck(
                term=self.current_term, follower=self.name,
                last_included_index=msg.last_included_index,
                offset=msg.offset, success=False))
            return
        # Like AppendEntries, a current-term chunk implies an elected
        # leader: convert to follower / refresh the election timer.
        if self.role is not Role.FOLLOWER:
            self._become_follower(msg.leader_id)
        else:
            self.leader_id = msg.leader_id
            self._arm_election_timer()
        if msg.last_included_index <= self.commit_index:
            # Already past this snapshot: full-confirm so the leader
            # abandons the transfer and resumes AppendEntries.
            self._send(sender, InstallSnapshotResponse(
                term=self.current_term, follower=self.name,
                last_included_index=msg.last_included_index, success=True))
            return
        if (self._install_pending is not None
                and msg.last_included_index <= self._install_pending):
            return  # an install covering this point is already mid-gate
        assembler = self._chunk_assembler
        if assembler is not None and (
                assembler.last_included_index < msg.last_included_index
                or assembler.leader_term < msg.term):
            # A newer snapshot (or a fresh leader's transfer of the same
            # one) supersedes the partial buffer.
            self._discard_partial_transfer("superseded")
            assembler = None
        if (assembler is not None
                and assembler.last_included_index > msg.last_included_index):
            return  # straggler chunk of an older snapshot; let it die
        if assembler is None:
            assembler = ChunkAssembler(
                last_included_index=msg.last_included_index,
                last_included_term=msg.last_included_term,
                leader_term=msg.term, total_size=msg.total_size)
            self._chunk_assembler = assembler
        assembler.add(msg.offset, msg.data)
        self._send(sender, InstallSnapshotChunkAck(
            term=self.current_term, follower=self.name,
            last_included_index=msg.last_included_index,
            offset=msg.offset, success=True))
        if assembler.complete:
            snapshot = deserialize_snapshot(assembler.assemble())
            self._chunk_assembler = None
            self._trace("snapshot.reassembled",
                        index=snapshot.last_included_index,
                        chunks=assembler.chunks_received,
                        bytes=assembler.total_size)
            self._accept_snapshot(snapshot, sender)

    def _gate_snapshot_install(self, snapshot: Snapshot,
                               then: Callable[[], None]) -> None:
        """Install ``snapshot`` then run ``then``. The C-Raft global
        engine overrides this to first replicate the image through
        intra-cluster consensus, exactly like its gated log inserts."""
        self._install_snapshot(snapshot)
        then()

    def _snapshot_install_done(self, sender: str, snapshot: Snapshot) -> None:
        if (self._install_pending is not None
                and self._install_pending <= snapshot.last_included_index):
            self._install_pending = None
        self._send(sender, InstallSnapshotResponse(
            term=self.current_term, follower=self.name,
            last_included_index=snapshot.last_included_index, success=True))

    def _install_snapshot(self, snapshot: Snapshot) -> None:
        """Adopt a leader-shipped snapshot: wholesale replacement of the
        compacted prefix. Retained suffix entries above the snapshot point
        survive; later replication resolves any conflicts among them."""
        self._trace("snapshot.install", index=snapshot.last_included_index,
                    term=snapshot.last_included_term, origin=snapshot.origin)
        self.entries_compacted += self.log.install_snapshot(
            snapshot.last_included_index, snapshot.last_included_term)
        # A log rewrite anchored at the new snapshot point: charge what
        # survives (the snapshot itself is charged by its store save).
        self.ctx.store.touch("log", size=self._retained_log_size())
        self.snapshot_store.save(snapshot)
        self.snapshots_installed += 1
        # commitIndex is volatile but never regresses: the snapshot covers
        # a committed prefix, so jumping to it is a plain commit advance
        # whose applies are replaced by the restored image. (max: an
        # asynchronously gated install may complete after commitIndex
        # already moved past the snapshot point.)
        self.commit_index = max(self.commit_index,
                                snapshot.last_included_index)
        self._refresh_configuration()
        self._after_snapshot_install(snapshot)
        self.ctx.on_snapshot_restore(snapshot)

    def _after_snapshot_install(self, snapshot: Snapshot) -> None:
        """Hook: Fast Raft floors lastLeaderIndex, drops stale votes."""

    @handles(InstallSnapshotResponse)
    def _handle_install_snapshot_response(self, msg: InstallSnapshotResponse,
                                          sender: str) -> None:
        # Leader side. next/match bookkeeping lives on the concrete
        # engines (classic and Fast Raft both define it); BaseEngine is
        # never a leader on its own.
        self._observe_term(msg.term)
        if self.role is not Role.LEADER or msg.term < self.current_term:
            return
        follower = msg.follower
        self._snapshot_inflight.pop(follower, None)
        transfer = self._chunk_senders.get(follower)
        if (transfer is not None
                and transfer.snapshot_index <= msg.last_included_index):
            # This response covers (or supersedes) the in-progress
            # transfer's snapshot point. A stale response for an *older*
            # image must not abort a newer transfer mid-flight.
            self._chunk_senders.pop(follower)
        self._note_follower_alive(follower)
        if not msg.success:
            return
        self.match_index[follower] = max(
            self.match_index.get(follower, 0), msg.last_included_index)
        self.next_index[follower] = max(
            self.next_index.get(follower, 1), msg.last_included_index + 1)
        self._check_catchup_complete(follower)

    def _note_follower_alive(self, follower: str) -> None:
        """Hook: Fast Raft resets the member-timeout beat counter."""

    def _check_catchup_complete(self, follower: str) -> None:
        """Hook: membership code finishes a pending join once the target
        is caught up."""

    # ------------------------------------------------------------------
    # Default no-op handlers (overridden where meaningful)
    # ------------------------------------------------------------------
    @handles(AppendEntries)
    def _handle_append_entries(self, msg: AppendEntries, sender: str) -> None:
        raise NotImplementedError

    @handles(AppendEntriesResponse)
    def _handle_append_entries_response(self, msg: AppendEntriesResponse,
                                        sender: str) -> None:
        raise NotImplementedError

    @handles(CommitNotice)
    def _handle_commit_notice(self, msg: CommitNotice, sender: str) -> None:
        entry = self.log.get(msg.index)
        if entry is not None and entry.entry_id == msg.entry_id:
            self.ctx.on_origin_commit(entry, msg.index)

    @handles(ClientRequest)
    def _handle_client_request(self, msg: ClientRequest, sender: str) -> None:
        raise NotImplementedError

    @handles(JoinRequest)
    def _handle_join_request(self, msg: JoinRequest, sender: str) -> None:
        self._trace("join.unsupported", site=msg.site)

    @handles(LeaveRequest)
    def _handle_leave_request(self, msg: LeaveRequest, sender: str) -> None:
        self._trace("leave.unsupported", site=msg.site)

    @handles(JoinAccepted)
    def _handle_join_accepted(self, msg: JoinAccepted, sender: str) -> None:
        pass

    @handles(LeaveAccepted)
    def _handle_leave_accepted(self, msg: LeaveAccepted, sender: str) -> None:
        pass

    @handles(NotInConfiguration)
    def _handle_not_in_configuration(self, msg: NotInConfiguration,
                                     sender: str) -> None:
        pass


# ``__init_subclass__`` only fires for subclasses; resolve the base
# class's own table now that its body (and the @handles marks) exist.
BaseEngine._DISPATCH_TABLE = resolve_dispatch_table(BaseEngine)
