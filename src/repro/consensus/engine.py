"""Shared consensus-engine machinery.

An *engine* is a transport-agnostic protocol state machine: it never
touches the network directly, only an injected ``send`` callable and the
simulation loop for timers. This is what lets C-Raft run one engine for
intra-cluster consensus and a second engine for inter-cluster consensus
inside the same site, exactly as the paper layers Fast Raft on Fast Raft.

:class:`BaseEngine` implements everything classic Raft and Fast Raft
share: persistent term/vote handling, role transitions, election timers
and vote counting, configuration tracking from the log, commit-index
advancement with ordered apply callbacks, and the configuration-membership
gate ("Messages from sites not listed in the configuration are ignored").
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.consensus.config import Configuration
from repro.consensus.entry import LogEntry
from repro.consensus.log import RaftLog
from repro.consensus.messages import (
    AppendEntries,
    AppendEntriesResponse,
    ClientRequest,
    CommitNotice,
    JoinAccepted,
    JoinRequest,
    LeaveAccepted,
    LeaveRequest,
    NotInConfiguration,
    ProposeEntry,
    ProposeToLeader,
    RequestVote,
    RequestVoteResponse,
    VoteEntry,
)
from repro.consensus.timing import TimingConfig
from repro.errors import ConsensusError
from repro.sim.loop import SimLoop
from repro.sim.timers import RestartableTimer, randomized_timeout
from repro.sim.trace import TraceRecorder
from repro.storage.stable import StableStore


class Role(enum.Enum):
    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


@dataclass
class EngineContext:
    """Everything an engine needs from its host site."""

    name: str
    loop: SimLoop
    send: Callable[[str, Any], None]
    rng: random.Random
    trace: TraceRecorder
    store: StableStore
    timing: TimingConfig
    #: Disambiguates engines in traces when one site runs several (C-Raft
    #: runs one per level: the cluster name locally, "global" above).
    scope: str = "main"
    #: Called for every committed entry, in log order.
    on_apply: Callable[[int, LogEntry], None] = lambda index, entry: None
    #: Called when an entry originated by this site commits (client reply
    #: path). May fire more than once per entry id; receivers dedup.
    on_origin_commit: Callable[[LogEntry, int], None] = lambda entry, index: None
    #: Called after every role transition (C-Raft reacts to local
    #: leadership changes by joining/leaving the global configuration).
    on_role_change: Callable[["Role"], None] = lambda role: None
    #: Called when the engine adopts a new configuration.
    on_config_change: Callable[[Configuration], None] = lambda config: None


#: Message types consensus-gated on sender membership.
_GATED_TYPES = (AppendEntries, AppendEntriesResponse, RequestVote,
                RequestVoteResponse, VoteEntry, ProposeEntry,
                ProposeToLeader)


class BaseEngine:
    """Common state and behaviour for the Raft-family engines."""

    #: Subclasses set this for traces/metrics ("raft", "fastraft", ...).
    protocol_name = "base"

    def __init__(self, ctx: EngineContext,
                 bootstrap_config: Configuration) -> None:
        self.ctx = ctx
        self.timing = ctx.timing
        # --- persistent state (survives crashes via the stable store) ---
        store = ctx.store
        self.log: RaftLog = store.get("log")
        if self.log is None:
            self.log = RaftLog()
            store.set("log", self.log)
        if "bootstrap_config" not in store:
            store.set("bootstrap_config", bootstrap_config)
        self._bootstrap_config: Configuration = store.get("bootstrap_config")
        self.current_term: int = store.get("current_term", 0)
        self.voted_for: str | None = store.get("voted_for", None)
        # --- volatile state ---
        self.commit_index = 0
        self.role = Role.FOLLOWER
        self.leader_id: str | None = None
        self._votes_received: set[str] = set()
        self._configuration = self._derive_configuration()
        # Extra senders whose consensus messages are accepted although they
        # are not configuration members (the leader's catch-up targets).
        self._extra_allowed: set[str] = set()
        self._election_timer = RestartableTimer(ctx.loop,
                                                self._on_election_timeout)
        self._stopped = False
        self._dispatch = self._build_dispatch()

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.ctx.name

    @property
    def configuration(self) -> Configuration:
        return self._configuration

    @property
    def is_leader(self) -> bool:
        return self.role is Role.LEADER

    @property
    def is_member(self) -> bool:
        return self.name in self._configuration

    def now(self) -> float:
        return self.ctx.loop.now()

    def _trace(self, category: str, **payload: Any) -> None:
        self.ctx.trace.record(self.now(), self.name,
                              f"{self.protocol_name}.{category}",
                              scope=self.ctx.scope, **payload)

    def _send(self, dst: str, message: Any) -> None:
        self.ctx.send(dst, message)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin operating as a follower."""
        self._stopped = False
        self._trace("start", term=self.current_term,
                    members=self._configuration.members)
        self._arm_election_timer()

    def stop(self) -> None:
        """Cancel all timers (crash or shutdown). State is preserved."""
        self._stopped = True
        self._election_timer.cancel()
        self._stop_role_timers()

    def _stop_role_timers(self) -> None:
        """Cancel role-specific timers; subclasses extend."""

    # ------------------------------------------------------------------
    # Persistence helpers
    # ------------------------------------------------------------------
    def _persist_term_vote(self) -> None:
        self.ctx.store.set("current_term", self.current_term)
        self.ctx.store.set("voted_for", self.voted_for)

    def _derive_configuration(self) -> Configuration:
        """Highest-versioned CONFIG entry wins; else the bootstrap config
        (see ConfigPayload.version for why not simply "last inserted")."""
        best = self.log.best_config_entry()
        if best is None:
            return self._bootstrap_config
        __, entry = best
        return Configuration(entry.payload.members)

    def _refresh_configuration(self) -> None:
        new_config = self._derive_configuration()
        if new_config != self._configuration:
            self._configuration = new_config
            self._trace("config.adopt", members=new_config.members)
            self._on_configuration_changed()
            self.ctx.on_config_change(new_config)

    def _on_configuration_changed(self) -> None:
        """Hook for subclasses (e.g. leader drops state for removed sites)."""

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def _build_dispatch(self) -> dict[type, Callable[[Any, str], None]]:
        return {
            AppendEntries: self._handle_append_entries,
            AppendEntriesResponse: self._handle_append_entries_response,
            RequestVote: self._handle_request_vote,
            RequestVoteResponse: self._handle_request_vote_response,
            CommitNotice: self._handle_commit_notice,
            ClientRequest: self._handle_client_request,
            JoinRequest: self._handle_join_request,
            LeaveRequest: self._handle_leave_request,
            JoinAccepted: self._handle_join_accepted,
            LeaveAccepted: self._handle_leave_accepted,
            NotInConfiguration: self._handle_not_in_configuration,
        }

    def handle(self, message: Any, sender: str) -> None:
        """Entry point for every delivered message."""
        if self._stopped:
            return
        if not self._sender_allowed(message, sender):
            self._on_gated_message(message, sender)
            return
        handler = self._dispatch.get(type(message))
        if handler is None:
            raise ConsensusError(
                f"{self.name}: no handler for {type(message).__name__}")
        handler(message, sender)

    def _sender_allowed(self, message: Any, sender: str) -> bool:
        if not isinstance(message, _GATED_TYPES):
            return True
        if sender == self.name or sender in self._configuration:
            return True
        if sender in self._extra_allowed:
            return True
        # A site that is not (or no longer) a voting member accepts
        # catch-up AppendEntries from anyone: its own configuration view
        # is stale by definition, and stale *leaders* are rejected by the
        # term check inside the handler.
        if isinstance(message, AppendEntries) and not self.is_member:
            return True
        return False

    def _on_gated_message(self, message: Any, sender: str) -> None:
        """Tell an evicted site it is out of the configuration so it can
        rejoin (paper Section IV-D: such a site "will need to send a join
        request to return to the configuration")."""
        self._trace("gate.ignored", sender=sender,
                    type=type(message).__name__)
        if isinstance(message, (RequestVote, VoteEntry, AppendEntries)):
            self._send(sender, NotInConfiguration(
                term=self.current_term,
                members=self._configuration.members,
                leader_hint=self.leader_id))

    # ------------------------------------------------------------------
    # Term handling
    # ------------------------------------------------------------------
    def _observe_term(self, term: int, leader_hint: str | None = None) -> None:
        """Adopt a higher term and fall back to follower if needed."""
        if term > self.current_term:
            self.current_term = term
            self.voted_for = None
            self._persist_term_vote()
            self._become_follower(leader_hint)

    # ------------------------------------------------------------------
    # Role transitions
    # ------------------------------------------------------------------
    def _become_follower(self, leader_hint: str | None = None) -> None:
        previous = self.role
        self.role = Role.FOLLOWER
        if leader_hint is not None:
            self.leader_id = leader_hint
        self._votes_received.clear()
        self._stop_role_timers()
        if previous is not Role.FOLLOWER:
            self._trace("role.follower", term=self.current_term)
            self.ctx.on_role_change(Role.FOLLOWER)
        self._arm_election_timer()

    def _become_candidate(self) -> None:
        self.role = Role.CANDIDATE
        self.current_term += 1
        self.voted_for = self.name
        self._persist_term_vote()
        self.leader_id = None
        self._votes_received = {self.name}
        self._trace("role.candidate", term=self.current_term)
        request = self._make_vote_request()
        for member in self._configuration.others(self.name):
            self._send(member, request)
        self._arm_election_timer()
        self._maybe_win_election()  # single-member configuration

    def _become_leader(self) -> None:
        self.role = Role.LEADER
        self.leader_id = self.name
        self._election_timer.cancel()
        self._trace("role.leader", term=self.current_term)
        self._init_leader_state()
        self.ctx.on_role_change(Role.LEADER)

    # Subclass responsibilities ----------------------------------------
    def _make_vote_request(self) -> RequestVote:
        raise NotImplementedError

    def _init_leader_state(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Election timer
    # ------------------------------------------------------------------
    def _arm_election_timer(self) -> None:
        timeout = randomized_timeout(self.ctx.rng,
                                     self.timing.election_timeout_min,
                                     self.timing.election_timeout_max)
        self._election_timer.reset(timeout)

    def _on_election_timeout(self) -> None:
        if self._stopped or self.role is Role.LEADER:
            return
        if not self.is_member:
            # Evicted (or never-admitted) sites cannot win an election;
            # they wait for membership handling instead of spamming votes.
            self._on_election_timeout_as_nonmember()
            return
        self._trace("election.timeout", term=self.current_term)
        self._become_candidate()

    def _on_election_timeout_as_nonmember(self) -> None:
        """Hook: Fast Raft launches a (re)join request here."""
        self._arm_election_timer()

    # ------------------------------------------------------------------
    # Elections: voting
    # ------------------------------------------------------------------
    def _handle_request_vote(self, msg: RequestVote, sender: str) -> None:
        # "Sites that receive the RequestVote message immediately move to
        # the new term."
        self._observe_term(msg.term)
        if msg.term < self.current_term:
            self._send(sender, self._make_vote_response(False))
            return
        can_vote = self.voted_for in (None, msg.candidate_id)
        granted = can_vote and self._candidate_up_to_date(msg)
        if granted:
            self.voted_for = msg.candidate_id
            self._persist_term_vote()
            self._arm_election_timer()
        self._trace("election.vote", candidate=msg.candidate_id,
                    term=msg.term, granted=granted)
        self._send(sender, self._make_vote_response(granted))

    def _candidate_up_to_date(self, msg: RequestVote) -> bool:
        raise NotImplementedError

    def _make_vote_response(self, granted: bool) -> RequestVoteResponse:
        return RequestVoteResponse(term=self.current_term,
                                   vote_granted=granted, voter=self.name)

    def _handle_request_vote_response(self, msg: RequestVoteResponse,
                                      sender: str) -> None:
        self._observe_term(msg.term)
        if self.role is not Role.CANDIDATE or msg.term < self.current_term:
            return
        if msg.vote_granted and msg.voter in self._configuration:
            self._votes_received.add(msg.voter)
            self._absorb_vote_response(msg)
            self._maybe_win_election()

    def _absorb_vote_response(self, msg: RequestVoteResponse) -> None:
        """Hook: Fast Raft collects self-approved entries for recovery."""

    def _maybe_win_election(self) -> None:
        if self.role is not Role.CANDIDATE:
            return
        if self._configuration.is_classic_quorum(self._votes_received):
            self._trace("election.won", term=self.current_term,
                        votes=sorted(self._votes_received))
            self._become_leader()

    # ------------------------------------------------------------------
    # Commit advancement
    # ------------------------------------------------------------------
    def _advance_commit_index(self, new_commit: int) -> None:
        """Move ``commit_index`` to ``new_commit``, applying in order.

        Stops early at a hole: a site never considers an entry committed
        before holding it (contiguity guard; see DESIGN.md).
        """
        while self.commit_index < new_commit:
            next_index = self.commit_index + 1
            entry = self.log.get(next_index)
            if entry is None:
                break
            self.commit_index = next_index
            self._trace("commit", index=next_index, entry_id=entry.entry_id,
                        kind=entry.kind.value, term=entry.term)
            self._on_entry_committed(next_index, entry)
            self.ctx.on_apply(next_index, entry)
            if entry.origin == self.name:
                self.ctx.on_origin_commit(entry, next_index)

    def _on_entry_committed(self, index: int, entry: LogEntry) -> None:
        """Hook: leaders notify origins, finish config changes, etc."""

    # ------------------------------------------------------------------
    # Default no-op handlers (overridden where meaningful)
    # ------------------------------------------------------------------
    def _handle_append_entries(self, msg: AppendEntries, sender: str) -> None:
        raise NotImplementedError

    def _handle_append_entries_response(self, msg: AppendEntriesResponse,
                                        sender: str) -> None:
        raise NotImplementedError

    def _handle_commit_notice(self, msg: CommitNotice, sender: str) -> None:
        entry = self.log.get(msg.index)
        if entry is not None and entry.entry_id == msg.entry_id:
            self.ctx.on_origin_commit(entry, msg.index)

    def _handle_client_request(self, msg: ClientRequest, sender: str) -> None:
        raise NotImplementedError

    def _handle_join_request(self, msg: JoinRequest, sender: str) -> None:
        self._trace("join.unsupported", site=msg.site)

    def _handle_leave_request(self, msg: LeaveRequest, sender: str) -> None:
        self._trace("leave.unsupported", site=msg.site)

    def _handle_join_accepted(self, msg: JoinAccepted, sender: str) -> None:
        pass

    def _handle_leave_accepted(self, msg: LeaveAccepted, sender: str) -> None:
        pass

    def _handle_not_in_configuration(self, msg: NotInConfiguration,
                                     sender: str) -> None:
        pass
