"""Timing parameters for the protocols and the experiment harness.

Defaults follow the paper's evaluation (Section VI): 100 ms leader
heartbeat for intra-cluster consensus, 500 ms for inter-cluster consensus,
member timeout of five missed heartbeat responses.

``decision_interval`` is the cadence of the leader's "periodically run"
decision procedure in Fast Raft. It defaults to half the heartbeat
interval: the decision procedure is a purely local computation, so it can
run more often than network dispatch; this calibration yields the paper's
observed fast-track latency of roughly half the classic-Raft commit
latency (see DESIGN.md, "Timing-model calibration").
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TimingConfig:
    """All protocol timers, in seconds."""

    #: Period of the leader's AppendEntries / heartbeat dispatch.
    heartbeat_interval: float = 0.100
    #: Period of the Fast Raft leader's decision procedure. ``None`` means
    #: ``heartbeat_interval / 2``.
    decision_interval: float | None = None
    #: Election timeout sampled uniformly from this range per arming.
    election_timeout_min: float = 0.300
    election_timeout_max: float = 0.600
    #: Client/proposer retry period ("proposal timeout" in the paper).
    proposal_timeout: float = 1.000
    #: Joining-site retry period ("join timeout" in the paper).
    join_timeout: float = 1.000
    #: Missed consecutive heartbeat responses before the leader declares a
    #: silent leave ("member timeout" in the paper; the Fig. 4 run uses 5).
    member_timeout_beats: int = 5
    #: Fast Raft leader re-proposes at a gap index after this long without
    #: a decidable quorum (liveness fill; see fastraft.decision).
    leader_fill_timeout: float = 0.400
    #: Random delay bound for re-proposing an entry that lost its slot to
    #: a concurrent proposal. Zero re-proposes immediately -- right for a
    #: single proposer; under heavy contention (C-Raft's global level)
    #: jitter desynchronizes the losers so they claim distinct indices.
    repropose_jitter: float = 0.0
    #: Enable Section IV-F's degraded reconfiguration: when silent leaves
    #: take the responsive members below a classic quorum, the leader
    #: directly inserts exclusion entries and shrinks quorums so the
    #: survivors can make progress. The paper endorses this for liveness
    #: (Section IV-F) but its own Section IV-E safety argument relies on
    #: quorums never shrinking without consensus -- and indeed, if the
    #: "departed" sites are actually alive behind a partition, the
    #: degraded path can produce two independently committing
    #: configurations (demonstrated mechanically in
    #: tests/test_fastraft_membership.py). Disable it for partition-safe
    #: behaviour at the price of the paper's documented deadlock.
    allow_degraded_reconfig: bool = True
    #: Max entries per AppendEntries message.
    max_append_batch: int = 100
    #: If True, the leader dispatches AppendEntries immediately when new
    #: entries arrive instead of waiting for the next heartbeat tick.
    #: The paper's implementation is tick-driven (False); the ablation
    #: benches flip this.
    eager_append: bool = False
    #: Probe-before-trust recovery: how long a recovering site waits for
    #: a RecoveryProbeReply before falling back to trusting its restored
    #: configuration outright (the pre-probe behaviour, so a fully
    #: partitioned recovery still comes up). ``0`` disables the
    #: handshake. The default resolves an eviction-while-down well inside
    #: ``election_timeout_min``, the old worst-case detection latency.
    recovery_probe_timeout: float = 0.150
    #: Leader-lease duration for linearizable local reads: each
    #: quorum-acked heartbeat renews the lease for this long past the
    #: beat's send time. ``0`` (the default) disables leases entirely --
    #: no lease fields travel and reads are refused.
    lease_duration: float = 0.0
    #: Clock-skew safety margin subtracted from every advertised lease
    #: expiry (follower clocks may run ahead of the leader's by up to
    #: this much without breaking the no-second-leader guarantee).
    lease_skew: float = 0.010

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ConfigurationError("heartbeat_interval must be positive")
        if self.decision_interval is not None and self.decision_interval <= 0:
            raise ConfigurationError("decision_interval must be positive")
        if not (0 < self.election_timeout_min <= self.election_timeout_max):
            raise ConfigurationError(
                f"bad election timeout range "
                f"[{self.election_timeout_min}, {self.election_timeout_max}]")
        if self.election_timeout_min < self.heartbeat_interval:
            raise ConfigurationError(
                "election timeout shorter than the heartbeat interval would "
                "trigger elections during normal operation")
        if self.member_timeout_beats < 1:
            raise ConfigurationError("member_timeout_beats must be >= 1")
        if self.max_append_batch < 1:
            raise ConfigurationError("max_append_batch must be >= 1")
        if self.recovery_probe_timeout < 0:
            raise ConfigurationError(
                "recovery_probe_timeout must be >= 0 (0 disables the "
                "recovery probe)")
        if self.lease_duration < 0:
            raise ConfigurationError(
                "lease_duration must be >= 0 (0 disables leases)")
        if self.lease_duration > 0:
            if self.lease_skew < 0:
                raise ConfigurationError("lease_skew must be >= 0")
            if self.lease_duration <= self.lease_skew:
                raise ConfigurationError(
                    "lease_duration must exceed lease_skew or every "
                    "lease expires before it is granted")
            if self.lease_duration < self.heartbeat_interval:
                raise ConfigurationError(
                    "lease_duration shorter than the heartbeat interval "
                    "would lapse between renewals")

    @property
    def effective_decision_interval(self) -> float:
        if self.decision_interval is not None:
            return self.decision_interval
        return self.heartbeat_interval / 2.0

    def with_overrides(self, **kwargs) -> "TimingConfig":
        """Copy with some fields replaced."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Paper presets
    # ------------------------------------------------------------------
    @classmethod
    def intra_cluster(cls) -> "TimingConfig":
        """Paper settings for one region: 100 ms heartbeat."""
        return cls()

    @classmethod
    def inter_cluster(cls) -> "TimingConfig":
        """Paper settings for the global level: 500 ms heartbeat."""
        return cls(heartbeat_interval=0.500,
                   election_timeout_min=1.500,
                   election_timeout_max=3.000,
                   proposal_timeout=4.000,
                   join_timeout=4.000,
                   leader_fill_timeout=2.000,
                   repropose_jitter=0.300)
