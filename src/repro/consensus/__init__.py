"""Consensus common layer shared by classic Raft, Fast Raft, and C-Raft.

Contains the vocabulary types of the paper's Section II--IV: log entries
(with Fast Raft's ``insertedBy`` mark), the replicated log (supporting
insert-at-index with holes and overwrite, which classic Raft never needs
but Fast Raft requires), membership configurations with classic and fast
quorum sizes, timing parameters, and every RPC message type.
"""

from repro.consensus.config import Configuration
from repro.consensus.entry import (
    BatchPayload,
    ConfigPayload,
    EntryKind,
    GlobalStatePayload,
    InsertedBy,
    LogEntry,
    make_entry_id,
)
from repro.consensus.log import RaftLog
from repro.consensus.quorum import (
    classic_quorum_size,
    fast_quorum_size,
    quorum_intersection_ok,
)
from repro.consensus.timing import TimingConfig

__all__ = [
    "BatchPayload",
    "ConfigPayload",
    "Configuration",
    "EntryKind",
    "GlobalStatePayload",
    "InsertedBy",
    "LogEntry",
    "RaftLog",
    "TimingConfig",
    "classic_quorum_size",
    "fast_quorum_size",
    "make_entry_id",
    "quorum_intersection_ok",
]
